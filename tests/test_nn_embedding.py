"""Tests for embedding tables and collections."""

import numpy as np
import pytest

from repro.nn import EmbeddingBagCollection, EmbeddingTable, TableConfig
from tests.util import numeric_grad


@pytest.fixture
def rng():
    return np.random.default_rng(11)


def make_table(rows=10, dim=4, pooling=1, rng=None):
    return EmbeddingTable(
        TableConfig("t", num_embeddings=rows, dim=dim, pooling=pooling),
        rng=rng or np.random.default_rng(0),
    )


class TestTableConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            TableConfig("t", 0, 4)
        with pytest.raises(ValueError):
            TableConfig("t", 4, 0)
        with pytest.raises(ValueError):
            TableConfig("t", 4, 4, pooling=0)

    def test_num_parameters(self):
        assert TableConfig("t", 100, 16).num_parameters == 1600

    def test_bytes_per_sample(self):
        assert TableConfig("t", 100, 16, pooling=3).bytes_per_sample() == 192


class TestEmbeddingTable:
    def test_single_hot_lookup(self, rng):
        table = make_table(rng=rng)
        ids = np.array([0, 3, 3, 9])
        out = table(ids)
        np.testing.assert_allclose(out, table.weight.data[ids])

    def test_multi_hot_sum_pooling(self, rng):
        table = make_table(pooling=2, rng=rng)
        ids = np.array([[0, 1], [2, 2]])
        out = table(ids)
        w = table.weight.data
        np.testing.assert_allclose(out[0], w[0] + w[1])
        np.testing.assert_allclose(out[1], 2 * w[2])

    def test_backward_scatter_add(self, rng):
        table = make_table(rng=rng)
        ids = np.array([1, 1, 4])
        table(ids)
        grad = np.arange(12, dtype=float).reshape(3, 4)
        table.backward(grad)
        np.testing.assert_allclose(table.weight.grad[1], grad[0] + grad[1])
        np.testing.assert_allclose(table.weight.grad[4], grad[2])
        np.testing.assert_allclose(table.weight.grad[0], 0)

    def test_backward_multi_hot_duplicate_ids(self, rng):
        """A row hit twice in one bag receives the gradient twice."""
        table = make_table(pooling=2, rng=rng)
        table(np.array([[5, 5]]))
        grad = np.ones((1, 4))
        table.backward(grad)
        np.testing.assert_allclose(table.weight.grad[5], 2 * np.ones(4))

    def test_gradient_matches_numeric(self, rng):
        table = make_table(rows=6, dim=3, pooling=2, rng=rng)
        ids = np.array([[0, 2], [2, 5], [1, 1]])
        proj = rng.standard_normal((3, 3))

        def loss(w):
            old = table.weight.data
            table.weight.data = w
            try:
                return float((table(ids) * proj).sum())
            finally:
                table.weight.data = old

        table.zero_grad()
        table(ids)
        table.backward(proj)
        num = numeric_grad(loss, table.weight.data.copy())
        np.testing.assert_allclose(table.weight.grad, num, atol=1e-6)

    def test_out_of_range_ids_raise(self, rng):
        table = make_table(rows=5, rng=rng)
        with pytest.raises(IndexError):
            table(np.array([5]))
        with pytest.raises(IndexError):
            table(np.array([-1]))

    def test_bad_ndim_raises(self, rng):
        with pytest.raises(ValueError):
            make_table(rng=rng)(np.zeros((2, 2, 2), dtype=int))


class TestEmbeddingBagCollection:
    def make_ebc(self, rng, F=3, dim=4):
        configs = [TableConfig(f"f{i}", 8 + i, dim) for i in range(F)]
        return EmbeddingBagCollection(configs, rng=rng)

    def test_forward_shape(self, rng):
        ebc = self.make_ebc(rng)
        ids = np.zeros((5, 3), dtype=int)
        assert ebc(ids).shape == (5, 3, 4)

    def test_each_feature_uses_own_table(self, rng):
        ebc = self.make_ebc(rng)
        ids = np.ones((1, 3), dtype=int)
        out = ebc(ids)
        for f in range(3):
            np.testing.assert_allclose(out[0, f], ebc.tables[f].weight.data[1])

    def test_multi_hot_input(self, rng):
        ebc = self.make_ebc(rng)
        ids = np.zeros((2, 3, 2), dtype=int)
        out = ebc(ids)
        np.testing.assert_allclose(out[0, 0], 2 * ebc.tables[0].weight.data[0])

    def test_backward_routes_per_feature(self, rng):
        ebc = self.make_ebc(rng)
        ids = np.zeros((2, 3), dtype=int)
        ebc(ids)
        grad = np.zeros((2, 3, 4))
        grad[:, 1] = 1.0
        ebc.backward(grad)
        np.testing.assert_allclose(ebc.tables[0].weight.grad, 0.0)
        assert np.abs(ebc.tables[1].weight.grad).sum() > 0

    def test_mixed_dims_rejected(self, rng):
        with pytest.raises(ValueError, match="share dim"):
            EmbeddingBagCollection(
                [TableConfig("a", 4, 4), TableConfig("b", 4, 8)], rng=rng
            )

    def test_duplicate_names_rejected(self, rng):
        with pytest.raises(ValueError, match="duplicate"):
            EmbeddingBagCollection(
                [TableConfig("a", 4, 4), TableConfig("a", 4, 4)], rng=rng
            )

    def test_feature_count_mismatch_raises(self, rng):
        ebc = self.make_ebc(rng)
        with pytest.raises(ValueError):
            ebc(np.zeros((2, 5), dtype=int))

    def test_num_parameters(self, rng):
        ebc = self.make_ebc(rng)
        assert ebc.num_parameters() == (8 + 9 + 10) * 4

    def test_bytes_per_sample(self, rng):
        ebc = self.make_ebc(rng)
        assert ebc.bytes_per_sample() == 3 * 4 * 4
