"""Execute the docstring examples of the public API."""

import doctest

import pytest

import repro.api.session
import repro.api.spec
import repro.comm.calibration
import repro.comm.cost_model
import repro.comm.functional
import repro.core.partition
import repro.core.peer
import repro.data.criteo
import repro.hardware.specs
import repro.hardware.topology
import repro.nn.interactions
import repro.partitioner.interaction_probe
import repro.partitioner.mds
import repro.partitioner.tower_partitioner
import repro.perf.iteration_model
import repro.perf.quantization
import repro.perf.specialized
import repro.sim.cluster
import repro.training.metrics
import repro.training.stats

MODULES = [
    repro.hardware.specs,
    repro.hardware.topology,
    repro.comm.calibration,
    repro.comm.cost_model,
    repro.comm.functional,
    repro.sim.cluster,
    repro.core.partition,
    repro.core.peer,
    repro.partitioner.interaction_probe,
    repro.partitioner.mds,
    repro.partitioner.tower_partitioner,
    repro.perf.iteration_model,
    repro.perf.quantization,
    repro.perf.specialized,
    repro.data.criteo,
    repro.training.metrics,
    repro.training.stats,
    repro.api.spec,
    repro.api.session,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    failures, tests = doctest.testmod(
        module, verbose=False, raise_on_error=False
    ).failed, doctest.testmod(module, verbose=False).attempted
    assert failures == 0, f"{module.__name__}: {failures} doctest failures"
    assert tests > 0, f"{module.__name__} has no doctest examples"
