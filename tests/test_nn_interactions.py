"""Tests for interaction architectures (DotInteraction, CrossNet)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import CrossNet, DotInteraction
from tests.util import check_module_gradients


@pytest.fixture
def rng():
    return np.random.default_rng(3)


class TestDotInteraction:
    def test_output_shape(self, rng):
        dot = DotInteraction(num_inputs=5, dim=8)
        assert dot(rng.standard_normal((4, 5, 8))).shape == (4, 10)

    def test_values_match_manual_pairs(self, rng):
        dot = DotInteraction(num_inputs=3, dim=4)
        x = rng.standard_normal((2, 3, 4))
        out = dot(x)
        expected = np.stack(
            [
                (x[:, 0] * x[:, 1]).sum(-1),
                (x[:, 0] * x[:, 2]).sum(-1),
                (x[:, 1] * x[:, 2]).sum(-1),
            ],
            axis=1,
        )
        np.testing.assert_allclose(out, expected)

    def test_gradients(self, rng):
        dot = DotInteraction(num_inputs=4, dim=3)
        check_module_gradients(dot, rng.standard_normal((2, 4, 3)), rng)

    def test_parameter_free(self):
        """§5.2.2: 'dot-product is parameter-free' — drives Table 4."""
        assert DotInteraction(8, 16).num_parameters() == 0

    def test_flops_quadratic_in_features(self):
        f1 = DotInteraction(10, 16).flops_per_sample()
        f2 = DotInteraction(20, 16).flops_per_sample()
        assert f2 / f1 == pytest.approx((20 * 19) / (10 * 9))

    def test_orthogonal_inputs_give_zero(self):
        dot = DotInteraction(2, 2)
        x = np.array([[[1.0, 0.0], [0.0, 1.0]]])
        np.testing.assert_allclose(dot(x), [[0.0]])

    def test_too_few_inputs_raises(self):
        with pytest.raises(ValueError):
            DotInteraction(1, 8)

    def test_wrong_shape_raises(self, rng):
        with pytest.raises(ValueError):
            DotInteraction(3, 4)(rng.standard_normal((2, 3, 5)))


class TestCrossNet:
    def test_output_shape(self, rng):
        net = CrossNet(dim=6, num_layers=3, rng=rng)
        assert net(rng.standard_normal((4, 6))).shape == (4, 6)

    def test_single_layer_matches_manual(self, rng):
        net = CrossNet(dim=4, num_layers=1, rng=rng)
        x = rng.standard_normal((3, 4))
        u = x @ net.weights[0].data + net.biases[0].data
        np.testing.assert_allclose(net(x), x * u + x)

    def test_gradients(self, rng):
        net = CrossNet(dim=3, num_layers=2, rng=rng)
        check_module_gradients(net, rng.standard_normal((2, 3)), rng, atol=1e-5)

    def test_parameters_counted(self):
        net = CrossNet(dim=8, num_layers=3)
        assert net.num_parameters() == 3 * (64 + 8)

    def test_flops_scale_with_layers(self):
        assert CrossNet(16, 4).flops_per_sample() == 2 * CrossNet(
            16, 2
        ).flops_per_sample()

    def test_zero_input_fixed_point(self, rng):
        net = CrossNet(dim=4, num_layers=2, rng=rng)
        np.testing.assert_allclose(net(np.zeros((2, 4))), np.zeros((2, 4)))

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            CrossNet(0, 1)
        with pytest.raises(ValueError):
            CrossNet(4, 0)

    def test_wrong_input_dim_raises(self, rng):
        with pytest.raises(ValueError):
            CrossNet(4, 1, rng=rng)(rng.standard_normal((2, 5)))

    def test_backward_before_forward_raises(self, rng):
        with pytest.raises(RuntimeError):
            CrossNet(4, 1, rng=rng).backward(np.zeros((2, 4)))


@settings(max_examples=15, deadline=None)
@given(
    t=st.integers(2, 5),
    n=st.integers(1, 4),
    batch=st.integers(1, 4),
    seed=st.integers(0, 500),
)
def test_dot_interaction_gradients_property(t, n, batch, seed):
    rng = np.random.default_rng(seed)
    check_module_gradients(
        DotInteraction(t, n), rng.standard_normal((batch, t, n)), rng
    )


@settings(max_examples=10, deadline=None)
@given(
    dim=st.integers(1, 4),
    layers=st.integers(1, 3),
    seed=st.integers(0, 500),
)
def test_crossnet_gradients_property(dim, layers, seed):
    rng = np.random.default_rng(seed)
    net = CrossNet(dim, layers, rng=rng)
    check_module_gradients(net, rng.standard_normal((2, dim)), rng, atol=1e-5)
