"""Tests for the shared quality-experiment harness."""

import numpy as np
import pytest

from repro.core.partition import FeaturePartition
from repro.experiments.quality import (
    NUM_BLOCKS,
    NUM_SPARSE,
    auc_sweep,
    block_purity,
    dcn_factory,
    dlrm_factory,
    dmt_dcn_factory,
    dmt_dlrm_factory,
    learned_tp_partition,
    quality_data,
    train_and_eval_auc,
)


class TestQualityData:
    def test_cached_and_consistent(self):
        ds1, train1, eval1 = quality_data()
        ds2, train2, eval2 = quality_data()
        assert ds1 is ds2  # lru_cache
        np.testing.assert_array_equal(train1[2], train2[2])

    def test_split_sizes(self):
        _, (td, ti, tl), (ed, ei, el) = quality_data()
        assert len(tl) == 8000 and len(el) == 4000
        assert ti.shape[1] == NUM_SPARSE


class TestFactories:
    @pytest.mark.parametrize(
        "factory",
        [
            dlrm_factory,
            dcn_factory,
            dmt_dlrm_factory(FeaturePartition.contiguous(NUM_SPARSE, 4)),
            dmt_dcn_factory(FeaturePartition.contiguous(NUM_SPARSE, 4)),
        ],
    )
    def test_factory_builds_trainable_model(self, factory):
        model = factory(np.random.default_rng(0))
        _, (td, ti, tl), _ = quality_data()
        logits = model(td[:32], ti[:32])
        assert logits.shape == (32,)

    def test_factories_seeded(self):
        a = dlrm_factory(np.random.default_rng(5))
        b = dlrm_factory(np.random.default_rng(5))
        _, (td, ti, _), _ = quality_data()
        np.testing.assert_array_equal(a(td[:8], ti[:8]), b(td[:8], ti[:8]))


class TestSweeps:
    def test_train_and_eval_auc_deterministic(self):
        a = train_and_eval_auc(dlrm_factory, seed=0, epochs=1)
        b = train_and_eval_auc(dlrm_factory, seed=0, epochs=1)
        assert a == b
        assert a > 0.8

    def test_auc_sweep_statistics(self):
        med, std, values = auc_sweep(dlrm_factory, seeds=(0, 1, 2), epochs=1)
        assert len(values) == 3
        assert med == float(np.median(values))
        assert std >= 0


class TestPartitionHelpers:
    def test_block_purity_bounds(self):
        ds, _, _ = quality_data()
        perfect = ds.true_partition
        assert block_purity(perfect, ds.block_of) == 1.0
        naive = FeaturePartition.strided(NUM_SPARSE, NUM_BLOCKS)
        assert block_purity(naive, ds.block_of) < 0.5

    def test_learned_tp_partition_recovers_blocks(self):
        ds, _, _ = quality_data()
        result = learned_tp_partition(NUM_BLOCKS)
        assert result.partition.num_towers == NUM_BLOCKS
        assert block_purity(result.partition, ds.block_of) > 0.6
