"""Tests for the robustness plane: seeded fault schedules, client
retry/backoff, the MTTR recovery model, the SLO autoscaler, and the
fault-aware ``ResilientFleet`` replay (including its no-fault
bit-equality oracle against ``ServingFleet``)."""

import pytest

from repro.api import (
    AutoscaleSpec,
    ClusterSpec,
    FaultSpec,
    RunSpec,
    ServeSpec,
    Session,
)
from repro.hardware import Cluster
from repro.serving import (
    AutoscalePolicy,
    FaultConfig,
    FaultEvent,
    MicroBatcher,
    Placement,
    RecoveryModel,
    RequestStream,
    ResilientFleet,
    RetryPolicy,
    SLOAutoscaler,
    ServingFleet,
    ServingModel,
    WorkloadConfig,
)
from repro.sim import SimCluster


def tiny_model(**overrides) -> ServingModel:
    kwargs = dict(
        name="tiny", num_lookups=4, embedding_dim=16, dense_mflops=1.0
    )
    kwargs.update(overrides)
    return ServingModel(**kwargs)


def trace(qps=50_000.0, n=2000, seed=3, **cfg):
    defaults = dict(num_lookups=4, key_space=2000)
    defaults.update(cfg)
    return RequestStream(
        WorkloadConfig(qps=qps, num_requests=n, seed=seed, **defaults)
    ).generate()


def make_resilient(strategy="disaggregated", **kw) -> ResilientFleet:
    sim = SimCluster(
        Cluster(num_hosts=4, gpus_per_host=2, generation="A100")
    )
    return ResilientFleet(
        sim,
        kw.pop("model", tiny_model()),
        Placement(strategy, emb_hosts=kw.pop("emb_hosts", 1)),
        MicroBatcher(
            kw.pop("max_batch_size", 16), kw.pop("max_delay_s", 0.001)
        ),
        **kw,
    )


STORM = dict(
    replica_crashes=2,
    replica_hangs=1,
    hang_duration_s=0.004,
    fetch_degrades=1,
    degrade_duration_s=0.004,
    fetch_outages=1,
    outage_duration_s=0.004,
)


class TestFaultSchedule:
    def test_same_seed_gives_identical_timeline(self):
        a = FaultConfig(seed=5, **STORM).schedule(1.0, 4)
        b = FaultConfig(seed=5, **STORM).schedule(1.0, 4)
        assert a == b

    def test_different_seeds_give_different_timelines(self):
        a = FaultConfig(seed=5, **STORM).schedule(1.0, 4)
        b = FaultConfig(seed=6, **STORM).schedule(1.0, 4)
        assert a != b

    def test_schedule_sorted_and_inside_window(self):
        cfg = FaultConfig(seed=9, start_s=0.2, end_s=0.8, **STORM)
        events = cfg.schedule(1.0, 4)
        assert len(events) == cfg.num_scheduled
        times = [e.at_s for e in events]
        assert times == sorted(times)
        assert all(0.2 <= t <= 0.8 for t in times)
        assert all(
            0 <= e.replica < 4
            for e in events
            if e.kind in ("replica_crash", "replica_hang")
        )

    def test_default_window_is_middle_90(self):
        lo, hi = FaultConfig().window(10.0)
        assert lo == pytest.approx(0.5)
        assert hi == pytest.approx(9.5)

    def test_explicit_events_merge_into_schedule(self):
        pinned = FaultEvent("replica_crash", at_s=0.001, replica=2)
        cfg = FaultConfig(seed=1, replica_crashes=1, events=(pinned,))
        events = cfg.schedule(1.0, 4)
        assert pinned in events
        assert len(events) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultConfig(replica_crashes=-1)
        with pytest.raises(ValueError):
            FaultConfig(replica_hangs=1)  # no duration
        with pytest.raises(ValueError):
            FaultConfig(start_s=0.5, end_s=0.2)
        with pytest.raises(ValueError):
            FaultEvent("meteor_strike", at_s=0.0)
        with pytest.raises(ValueError):
            FaultEvent("fetch_degrade", at_s=0.0, factor=0.5)


class TestRetryPolicy:
    def test_pinned_backoff_schedule_without_jitter(self):
        policy = RetryPolicy(
            backoff_base_ms=0.25, backoff_cap_ms=2.0, jitter=0.0
        )
        got = [policy.backoff_s(req_id=7, attempt=a) for a in range(1, 6)]
        # Capped exponential: 0.25, 0.5, 1.0 then pinned at the 2.0 cap.
        assert got == [b * 1e-3 for b in (0.25, 0.5, 1.0, 2.0, 2.0)]

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(
            backoff_base_ms=0.25, backoff_cap_ms=2.0, jitter=0.5
        )
        for req_id in (0, 17, 123_456):
            for attempt in (1, 2, 3):
                once = policy.backoff_s(req_id, attempt)
                again = policy.backoff_s(req_id, attempt)
                assert once == again  # hash-based, no shared RNG
                full = min(0.25 * 2 ** (attempt - 1), 2.0) * 1e-3
                assert 0.5 * full <= once <= full

    def test_jitter_varies_across_requests(self):
        policy = RetryPolicy(jitter=1.0)
        draws = {policy.backoff_s(r, 1) for r in range(32)}
        assert len(draws) > 16  # decorrelated, not a constant

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(timeout_ms=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base_ms=1.0, backoff_cap_ms=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(retry_budget=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy().backoff_s(0, 0)


class TestRecoveryModel:
    def test_mttr_formula(self):
        model = RecoveryModel(
            detection_s=1e-3,
            restore_s=2e-3,
            checkpoint_period_s=0.004,
            replay_rate=0.5,
        )
        assert model.mttr_s() == pytest.approx(1e-3 + 2e-3 + 0.001)

    def test_no_checkpoints_pays_cold_rebuild(self):
        model = RecoveryModel(
            detection_s=1e-3, checkpoint_period_s=0.0, cold_rebuild_s=0.05
        )
        assert model.mttr_s() == pytest.approx(0.051)

    def test_mttr_monotone_in_checkpoint_period(self):
        periods = (0.001, 0.002, 0.004, 0.008, 0.016)
        mttrs = [
            RecoveryModel(
                detection_s=1e-3,
                restore_s=2e-3,
                checkpoint_period_s=p,
                cold_rebuild_s=0.05,
            ).mttr_s()
            for p in periods
        ]
        assert all(a < b for a, b in zip(mttrs, mttrs[1:]))
        cold = RecoveryModel(
            detection_s=1e-3, checkpoint_period_s=0.0, cold_rebuild_s=0.05
        ).mttr_s()
        assert all(m < cold for m in mttrs)

    def test_from_elastic_plan_prices_the_restore_leg(self):
        class _Migration:
            seconds = 0.007

        class _Plan:
            migration = _Migration()

        model = RecoveryModel.from_elastic_plan(
            _Plan(), checkpoint_period_s=0.004, detection_s=1e-3
        )
        assert model.restore_s == pytest.approx(0.007)
        assert model.mttr_s() == pytest.approx(1e-3 + 0.007 + 0.001)


class TestSLOAutoscaler:
    def policy(self, **kw):
        defaults = dict(
            slo_p99_ms=2.0,
            min_replicas=2,
            max_replicas=6,
            cooldown_windows=1,
            queue_high=10.0,
            scale_down_margin=0.5,
        )
        defaults.update(kw)
        return AutoscalePolicy(**defaults)

    def test_scales_up_on_hot_p99(self):
        scaler = SLOAutoscaler(self.policy())
        assert scaler.decide(5.0, queue_depth=0.0, current_replicas=3) == 4

    def test_scales_up_on_deep_queues(self):
        scaler = SLOAutoscaler(self.policy())
        assert scaler.decide(1.0, queue_depth=50.0, current_replicas=3) == 4

    def test_respects_max_replicas(self):
        scaler = SLOAutoscaler(self.policy())
        assert scaler.decide(5.0, queue_depth=0.0, current_replicas=6) == 6

    def test_scales_down_when_cold_and_respects_min(self):
        scaler = SLOAutoscaler(self.policy())
        assert scaler.decide(0.5, queue_depth=0.0, current_replicas=3) == 2
        scaler = SLOAutoscaler(self.policy())
        assert scaler.decide(0.5, queue_depth=0.0, current_replicas=2) == 2

    def test_holds_between_margins(self):
        scaler = SLOAutoscaler(self.policy())
        assert scaler.decide(1.5, queue_depth=1.0, current_replicas=3) == 3

    def test_cooldown_suppresses_the_next_action(self):
        scaler = SLOAutoscaler(self.policy(cooldown_windows=1))
        assert scaler.decide(5.0, queue_depth=0.0, current_replicas=3) == 4
        # Still hot, but the cooldown window absorbs the observation.
        assert scaler.decide(5.0, queue_depth=0.0, current_replicas=4) == 4
        assert scaler.decide(5.0, queue_depth=0.0, current_replicas=4) == 5

    def test_reset_clears_cooldown(self):
        scaler = SLOAutoscaler(self.policy(cooldown_windows=3))
        scaler.decide(5.0, queue_depth=0.0, current_replicas=3)
        scaler.reset()
        assert scaler.decide(5.0, queue_depth=0.0, current_replicas=3) == 4

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            AutoscalePolicy(min_replicas=4, max_replicas=2)
        with pytest.raises(ValueError):
            AutoscalePolicy(scale_down_margin=1.0)
        with pytest.raises(ValueError):
            AutoscalePolicy(queue_high=0.0)


class TestResilientFleetOracle:
    @pytest.mark.parametrize("router", ["round_robin", "hash"])
    def test_no_fault_replay_is_bit_identical_to_serving_fleet(
        self, router
    ):
        requests = trace(n=1500)
        plain = ServingFleet(
            SimCluster(Cluster(num_hosts=4, gpus_per_host=2)),
            tiny_model(),
            Placement("disaggregated", emb_hosts=1),
            MicroBatcher(16, 0.001),
            router=router,
            num_replicas=3,
            cache_rows=256,
        ).serve(requests)
        resilient = make_resilient(
            router=router, num_replicas=3, cache_rows=256
        ).serve(requests)
        assert resilient.fleet.to_dict() == plain.to_dict()
        assert resilient.num_lost == 0
        assert resilient.num_retried == 0

    def test_fault_replay_is_bit_reproducible(self):
        faults = FaultConfig(seed=5, **STORM)
        reports = [
            make_resilient(
                num_replicas=3,
                cache_rows=256,
                faults=faults,
                recovery=RecoveryModel(checkpoint_period_s=0.002),
            ).serve(trace(n=1500))
            for _ in range(2)
        ]
        assert reports[0].to_dict() == reports[1].to_dict()


def crash_at(at_s: float, replica: int = 0) -> FaultConfig:
    return FaultConfig(
        events=(FaultEvent("replica_crash", at_s=at_s, replica=replica),)
    )


class TestFaultedReplay:
    def test_served_plus_lost_equals_offered(self):
        configs = (
            FaultConfig(seed=5, **STORM),
            crash_at(0.005),
            FaultConfig(),
        )
        retries = (RetryPolicy(), RetryPolicy(max_retries=0), RetryPolicy())
        for faults, retry in zip(configs, retries):
            report = make_resilient(
                num_replicas=3, cache_rows=256, faults=faults, retry=retry
            ).serve(trace(n=1200))
            assert report.num_served + report.num_lost == report.num_offered
            assert report.num_served == report.fleet.fleet.num_requests

    def test_crash_without_retries_loses_what_retries_save(self):
        requests = trace(n=2000)
        kw = dict(num_replicas=3, cache_rows=256, faults=crash_at(0.01))
        no_retry = make_resilient(
            retry=RetryPolicy(timeout_ms=0.5, max_retries=0), **kw
        ).serve(requests)
        with_retry = make_resilient(
            retry=RetryPolicy(timeout_ms=0.5, max_retries=3), **kw
        ).serve(requests)
        assert no_retry.num_lost > 0
        assert with_retry.num_lost == 0
        assert with_retry.num_retried > 0
        # A retried request pays the timeout plus a backoff before it
        # lands on a live replica — visible, bounded latency.
        assert (
            with_retry.fleet.fleet.latency_ms["max"]
            >= no_retry.fleet.fleet.latency_ms["max"]
        )

    def test_recovery_restores_the_crashed_replica(self):
        requests = trace(n=2000)
        kw = dict(
            num_replicas=3,
            cache_rows=256,
            faults=crash_at(0.01),
            retry=RetryPolicy(timeout_ms=0.5, max_retries=3),
        )
        recovered = make_resilient(
            recovery=RecoveryModel(
                detection_s=1e-4, restore_s=1e-4, checkpoint_period_s=0.001
            ),
            **kw,
        ).serve(requests)
        assert len(recovered.crashes) == 1
        assert recovered.mttr_s > 0
        dead = make_resilient(recovery=None, **kw).serve(requests)
        assert dead.mttr_s == 0.0
        # The revived replica takes traffic again; without recovery the
        # remaining two replicas carry the whole tail.
        served_by = [
            rep.num_requests for rep in recovered.fleet.replicas.values()
        ]
        assert sum(r > 0 for r in served_by) == 3

    def test_reported_mttr_matches_the_model_and_is_monotone(self):
        requests = trace(n=1500)
        mttrs = []
        for period in (0.001, 0.004, 0.016):
            model = RecoveryModel(
                detection_s=1e-4,
                restore_s=1e-4,
                checkpoint_period_s=period,
            )
            report = make_resilient(
                num_replicas=3,
                cache_rows=256,
                faults=crash_at(0.01),
                recovery=model,
            ).serve(requests)
            assert report.mttr_s == pytest.approx(model.mttr_s())
            mttrs.append(report.mttr_s)
        assert mttrs == sorted(mttrs)
        assert mttrs[0] < mttrs[-1]

    def test_degraded_mode_serves_through_a_fetch_outage(self):
        requests = trace(n=1500)
        outage = FaultConfig(
            events=(
                FaultEvent("fetch_outage", at_s=0.002, duration_s=0.02),
            )
        )
        kw = dict(num_replicas=3, cache_rows=256, faults=outage)
        degraded = make_resilient(
            degraded_mode=True, stale_penalty=0.05, **kw
        ).serve(requests)
        assert degraded.num_lost == 0
        assert degraded.num_degraded > 0
        assert degraded.quality_cost == pytest.approx(
            0.05 * degraded.degraded_fraction
        )
        stalled = make_resilient(degraded_mode=False, **kw).serve(requests)
        assert stalled.num_degraded == 0
        assert stalled.quality_cost == 0.0
        # Stalling waits the outage out; degraded mode answers now.
        assert (
            stalled.fleet.fleet.latency_ms["max"]
            > degraded.fleet.fleet.latency_ms["max"]
        )

    def test_fetch_degrade_inflates_latency(self):
        requests = trace(n=1500)
        degrade = FaultConfig(
            events=(
                FaultEvent(
                    "fetch_degrade",
                    at_s=0.002,
                    duration_s=0.02,
                    factor=8.0,
                ),
            )
        )
        healthy = make_resilient(num_replicas=3, cache_rows=256).serve(
            requests
        )
        browned = make_resilient(
            num_replicas=3, cache_rows=256, faults=degrade
        ).serve(requests)
        assert (
            browned.fleet.fleet.latency_ms["max"]
            > healthy.fleet.fleet.latency_ms["max"]
        )

    def test_fault_timeline_lands_in_the_report(self):
        report = make_resilient(
            num_replicas=3,
            cache_rows=256,
            faults=FaultConfig(seed=5, **STORM),
            recovery=RecoveryModel(checkpoint_period_s=0.002),
        ).serve(trace(n=1200))
        assert len(report.fault_timeline) == FaultConfig(
            seed=5, **STORM
        ).num_scheduled
        kinds = {e["kind"] for e in report.fault_timeline}
        assert "replica_crash" in kinds


class TestAutoscaledReplay:
    def autoscaler(self, **kw):
        defaults = dict(
            slo_p99_ms=2.0,
            min_replicas=2,
            max_replicas=5,
            cooldown_windows=1,
        )
        defaults.update(kw)
        return SLOAutoscaler(AutoscalePolicy(**defaults))

    def test_windows_and_bounds_are_recorded(self):
        report = make_resilient(
            num_replicas=2,
            cache_rows=256,
            autoscaler=self.autoscaler(),
        ).serve(trace(qps=200_000.0, n=4000))
        assert len(report.windows) > 0
        assert all(2 <= w["replicas"] <= 5 for w in report.windows)
        assert report.slo_p99_ms == pytest.approx(2.0)

    def test_overload_scales_the_fleet_up(self):
        # One replica at a rate far past its capacity: queues build,
        # the controller must grow the fleet.
        report = make_resilient(
            num_replicas=1,
            cache_rows=256,
            autoscaler=self.autoscaler(
                min_replicas=1, slo_p99_ms=0.5, queue_high=4.0
            ),
        ).serve(trace(qps=2_000_000.0, n=6000))
        assert any(
            e["to_replicas"] > e["from_replicas"]
            for e in report.scale_events
        )
        assert max(w["replicas"] for w in report.windows) > 1

    def test_initial_fleet_below_autoscaler_floor_rejected(self):
        with pytest.raises(ValueError):
            make_resilient(
                num_replicas=2,
                cache_rows=256,
                autoscaler=self.autoscaler(min_replicas=3),
            )


class TestFaultSessionWiring:
    def spec(self, **over):
        sections = dict(
            name="fault-wiring",
            cluster=ClusterSpec(num_hosts=4, gpus_per_host=2),
            serve=ServeSpec(
                qps=50_000.0,
                num_requests=1500,
                placement="disaggregated",
                emb_hosts=1,
                fleet_replicas=3,
                cache_rows=256,
                key_space=2000,
            ),
            faults=FaultSpec(
                seed=5,
                replica_crashes=1,
                timeout_ms=0.5,
                detection_ms=0.1,
                restore_ms=0.1,
                checkpoint_period_s=0.001,
            ),
            autoscale=AutoscaleSpec(
                slo_p99_ms=2.0, min_replicas=3, max_replicas=4
            ),
        )
        sections.update(over)
        return RunSpec(**sections)

    def test_fault_spec_round_trips(self):
        spec = self.spec()
        assert RunSpec.from_dict(spec.to_dict()) == spec

    def test_session_serve_emits_fault_reports(self):
        artifact = Session(self.spec()).serve()
        report = artifact.fault_reports["disaggregated"]
        assert report.num_served + report.num_lost == report.num_offered
        assert artifact.fleet_reports["disaggregated"] is report.fleet
        summary = artifact.summary()
        assert "faults" in summary
        assert (
            summary["faults"]["disaggregated"]["num_offered"]
            == report.num_offered
        )

    def test_session_runs_are_bit_reproducible(self):
        dicts = [
            Session(self.spec())
            .serve()
            .fault_reports["disaggregated"]
            .to_dict()
            for _ in range(2)
        ]
        assert dicts[0] == dicts[1]

    def test_faults_without_fleet_rejected(self):
        with pytest.raises(Exception):
            self.spec(
                serve=ServeSpec(
                    qps=50_000.0,
                    num_requests=1500,
                    placement="disaggregated",
                    emb_hosts=1,
                    cache_rows=256,
                    key_space=2000,
                ),
                autoscale=None,
            )
