"""Plan-time RunSpec validation: property + negative suites.

The property suite asserts every preset and every registered
experiment's specs pass :func:`repro.analysis.analyze_spec` with zero
errors (the analyzer must never reject a configuration the repo
actually runs).  The negative suite seeds deliberately broken RunSpecs
and pins each rejection to its stable diagnostic code.  The
ServeSpec cache/key-space overcommit bugfix and the
``Session.analyze`` / CLI wiring are covered alongside.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.analysis import SpecAnalysisError, analyze_spec, registered_checks
from repro.api import Session, SpecError, presets
from repro.api.spec import (
    ABSpec,
    AutoscaleSpec,
    CheckpointSpec,
    ClusterSpec,
    DataSpec,
    FaultSpec,
    ModelSpec,
    PartitionSpec,
    PerfSpec,
    RunSpec,
    ServeSpec,
    TierSpec,
    TrainSpec,
)
from repro.checkpoint import save_training_checkpoint

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")


def error_codes(spec):
    return sorted({d.code for d in analyze_spec(spec) if d.severity == "error"})


def warning_codes(spec):
    return sorted(
        {d.code for d in analyze_spec(spec) if d.severity == "warning"}
    )


def tiny_quality_spec(**overrides):
    """A small, fully valid train spec the negative cases perturb."""
    base = dict(
        cluster=ClusterSpec(num_hosts=2, gpus_per_host=2),
        data=DataSpec(
            num_sparse=8, num_blocks=2, cardinality=32, num_samples=512
        ),
        model=ModelSpec(variant="flat", embedding_dim=8,
                        bottom_mlp=(16,), top_mlp=(16,)),
        train=TrainSpec(batch_size=64, epochs=1),
    )
    base.update(overrides)
    return RunSpec(**base)


# ----------------------------------------------------------------------
class TestPropertyEveryRealSpecValidates:
    @pytest.mark.parametrize(
        "build",
        [
            presets.quickstart_spec,
            presets.train_dmt_criteo_spec,
            presets.distributed_training_spec,
            lambda: presets.naive_control_spec(
                presets.train_dmt_criteo_spec()
            ),
        ],
    )
    def test_presets_pass(self, build):
        spec = build()
        assert error_codes(spec) == []
        # The presets are also warning-free: they are the documented
        # front door and must not train users to ignore findings.
        assert warning_codes(spec) == []

    @pytest.mark.parametrize("fast", [True, False])
    def test_experiment_specs_pass(self, fast):
        from repro.experiments import (
            checkpointing,
            fault_tolerance,
            model_freshness,
            multi_task_ab,
            serving,
            serving_fleet,
            tiered_serving,
        )

        for mod in (
            serving,
            serving_fleet,
            tiered_serving,
            checkpointing,
            fault_tolerance,
            model_freshness,
            multi_task_ab,
        ):
            for arm, spec in mod.experiment_specs(fast=fast).items():
                bad = error_codes(spec)
                assert bad == [], (mod.__name__, arm, bad)

    def test_session_analyze_passes_for_experiment_presets(self):
        from repro.experiments import (
            checkpointing,
            fault_tolerance,
            model_freshness,
            multi_task_ab,
            serving,
            serving_fleet,
            tiered_serving,
        )

        for mod in (
            serving,
            serving_fleet,
            tiered_serving,
            checkpointing,
            fault_tolerance,
            model_freshness,
            multi_task_ab,
        ):
            for spec in mod.experiment_specs().values():
                diags = Session(spec).analyze()
                assert not [d for d in diags if d.severity == "error"]


# ----------------------------------------------------------------------
class TestNegativeSeededBrokenSpecs:
    """>= 10 deliberately broken RunSpecs, each pinned to its code."""

    def test_degenerate_data_split(self):
        spec = tiny_quality_spec(
            data=DataSpec(num_samples=2, eval_fraction=0.9,
                          num_sparse=8, num_blocks=2),
            train=TrainSpec(batch_size=1, epochs=1),
        )
        assert error_codes(spec) == ["degenerate-data-split"]

    def test_batch_exceeds_train_split(self):
        spec = tiny_quality_spec(train=TrainSpec(batch_size=512, epochs=1))
        assert error_codes(spec) == ["batch-exceeds-train-split"]

    def test_probe_batch_exceeds_split(self):
        spec = tiny_quality_spec(
            train=None,
            partition=PartitionSpec(
                strategy="probe", num_towers=2, probe_batch_size=4096
            ),
        )
        assert error_codes(spec) == ["probe-batch-exceeds-split"]

    def test_global_batch_indivisible(self):
        spec = tiny_quality_spec(
            model=ModelSpec(variant="dmt", embedding_dim=8,
                            bottom_mlp=(16,), top_mlp=(16,)),
            partition=PartitionSpec(strategy="contiguous", num_towers=2),
            train=TrainSpec(mode="simulated", global_batch=130),
        )
        assert error_codes(spec) == ["global-batch-indivisible"]

    def test_shard_capacity_overflow(self):
        # Paper-scale Criteo tables (~91 GB) cannot fit one A100.
        spec = RunSpec(
            cluster=ClusterSpec(num_hosts=1, gpus_per_host=1),
            perf=PerfSpec(kind="dlrm"),
        )
        assert error_codes(spec) == ["shard-capacity-overflow"]

    def test_shard_capacity_scales_with_cluster(self):
        # The same tables fit once the world is large enough.
        spec = RunSpec(
            cluster=ClusterSpec(num_hosts=4, gpus_per_host=4),
            perf=PerfSpec(kind="dlrm"),
        )
        assert error_codes(spec) == []

    def test_fetch_tier_overflow(self):
        # One V100 host (32 GB x 1 GPU) cannot front the Criteo tables.
        spec = RunSpec(
            cluster=ClusterSpec(
                num_hosts=2, gpus_per_host=1, generation="V100"
            ),
            serve=ServeSpec(placement="disaggregated", emb_hosts=1),
        )
        assert error_codes(spec) == ["fetch-tier-overflow"]

    def test_cache_overcommits_memory(self):
        spec = RunSpec(
            cluster=ClusterSpec(num_hosts=1, gpus_per_host=1),
            serve=ServeSpec(
                placement="colocated",
                cache_rows=10**9,
                key_space=2 * 10**9,
                fleet_replicas=4,
                router="p2c",
            ),
        )
        codes = error_codes(spec)
        assert "cache-overcommits-memory" in codes

    def test_flash_outside_trace(self):
        spec = RunSpec(
            serve=ServeSpec(
                qps=1000.0,
                num_requests=1000,
                scenario="flash",
                flash_start_s=5.0,
                flash_duration_s=0.5,
                placement="colocated",
            ),
        )
        assert error_codes(spec) == ["flash-outside-trace"]

    def test_checkpoint_resume_missing(self):
        spec = tiny_quality_spec(
            checkpoint=CheckpointSpec(resume_from="/nonexistent/ckpt"),
        )
        assert error_codes(spec) == ["checkpoint-resume-missing"]

    def test_warm_start_dead_cache(self, tmp_path):
        ckpt = str(tmp_path / "step_1")
        os.makedirs(ckpt)
        with open(os.path.join(ckpt, "manifest.json"), "w") as fh:
            json.dump({}, fh)
        spec = tiny_quality_spec(
            serve=ServeSpec(
                placement="colocated",
                cache_rows=0,
                key_space=64,
                num_requests=64,
                qps=1000.0,
                max_batch_size=8,
            ),
            checkpoint=CheckpointSpec(resume_from=ckpt, warm_start=True),
        )
        assert error_codes(spec) == ["warm-start-dead-cache"]

    def _tiered_spec(self, tiers, **serve_overrides):
        serve = dict(
            qps=2000.0, num_requests=2000, key_space=200_000,
            skew=1.05, cache_rows=4096, placement="both", emb_hosts=2,
        )
        serve.update(serve_overrides)
        return RunSpec(
            cluster=ClusterSpec(
                num_hosts=8, gpus_per_host=4, generation="A100"
            ),
            serve=ServeSpec(**serve),
            tiers=tiers,
        )

    def test_clean_tiered_spec_passes(self):
        spec = self._tiered_spec(
            TierSpec(levels=("dram",), cache_rows=(65_536,),
                     backing="remote")
        )
        assert error_codes(spec) == []

    def test_tier_capacity_misordered(self):
        # A 1024-row DRAM level under the 4096-row HBM cache: the
        # inclusive chain's lower level can never serve a hit.
        spec = self._tiered_spec(
            TierSpec(levels=("dram",), cache_rows=(1024,),
                     backing="remote")
        )
        assert error_codes(spec) == ["tier-capacity-misordered"]

    def test_tier_dead_remote(self):
        # Chain (4096 + 300k rows) covers the whole 200k key space, so
        # the priced remote backing never serves a steady-state miss.
        spec = self._tiered_spec(
            TierSpec(levels=("dram",), cache_rows=(300_000,),
                     backing="remote")
        )
        assert error_codes(spec) == ["tier-dead-remote"]

    def test_tier_overflow(self):
        # 30e9 rows x 512 B ~ 15.4 TB of DRAM level, but the 6 dense
        # hosts only hold 12 TB of physical DRAM.
        spec = self._tiered_spec(
            TierSpec(
                levels=("dram",),
                cache_rows=(30_000_000_000,),
                backing="remote",
            ),
            key_space=50_000_000_000,
        )
        assert error_codes(spec) == ["tier-overflow"]

    def test_remote_backing_retargets_fetch_tier(self):
        """The fetch-tier bound switches with tiers.backing: misses of
        a remote-backed chain land on the PS's DRAM capacity, not the
        emb-hosts' HBM."""
        broken = RunSpec(
            cluster=ClusterSpec(
                num_hosts=2, gpus_per_host=1, generation="V100"
            ),
            serve=ServeSpec(placement="disaggregated", emb_hosts=1),
        )
        assert error_codes(broken) == ["fetch-tier-overflow"]
        fixed = broken.replace(
            tiers=TierSpec(levels=(), cache_rows=(), backing="remote")
        )
        assert error_codes(fixed) == []

    def _fault_spec(self, faults=None, autoscale=None, **serve_overrides):
        serve = dict(
            qps=50_000.0, num_requests=2000, key_space=2000,
            cache_rows=256, placement="disaggregated", emb_hosts=1,
            fleet_replicas=3,
        )
        serve.update(serve_overrides)
        return RunSpec(
            cluster=ClusterSpec(num_hosts=4, gpus_per_host=2),
            serve=ServeSpec(**serve),
            faults=faults,
            autoscale=autoscale,
        )

    def test_clean_fault_autoscale_spec_passes(self):
        spec = self._fault_spec(
            faults=FaultSpec(replica_crashes=1),
            autoscale=AutoscaleSpec(
                slo_p99_ms=2.0, min_replicas=2, max_replicas=4
            ),
        )
        assert error_codes(spec) == []

    def test_fault_outside_trace(self):
        # The trace spans 2000 / 50k qps = 0.04 s; the injection window
        # opens at t = 1 s, after every request has been served.
        spec = self._fault_spec(
            faults=FaultSpec(replica_crashes=1, start_s=1.0, end_s=2.0),
        )
        assert error_codes(spec) == ["fault-outside-trace"]

    def test_retry_budget_zero_with_faults(self):
        spec = self._fault_spec(
            faults=FaultSpec(replica_crashes=1, max_retries=0),
        )
        assert error_codes(spec) == ["retry-budget-zero-with-faults"]
        spec = self._fault_spec(
            faults=FaultSpec(replica_crashes=1, retry_budget=0.0),
        )
        assert error_codes(spec) == ["retry-budget-zero-with-faults"]

    def test_autoscale_bounds_inverted(self):
        spec = self._fault_spec(
            autoscale=AutoscaleSpec(min_replicas=5, max_replicas=2),
        )
        assert error_codes(spec) == ["autoscale-bounds-inverted"]
        # Bounds ordered, but the initial fleet sits outside them.
        spec = self._fault_spec(
            autoscale=AutoscaleSpec(min_replicas=4, max_replicas=8),
        )
        assert error_codes(spec) == ["autoscale-bounds-inverted"]

    def test_degraded_mode_without_backing(self):
        spec = self._fault_spec(
            faults=FaultSpec(
                fetch_outages=1,
                outage_duration_s=0.005,
                degraded_mode=True,
            ),
            cache_rows=0,
        )
        assert error_codes(spec) == ["degraded-mode-without-backing"]

    def _online_spec(self, **online_overrides):
        from repro.experiments.model_freshness import freshness_spec

        spec = freshness_spec(fast=True)
        if online_overrides:
            spec = spec.replace(
                online=spec.online.replace(**online_overrides)
            )
        return spec

    def test_clean_online_spec_passes(self):
        assert error_codes(self._online_spec()) == []

    def test_delta_without_base(self):
        spec = self._online_spec().replace(checkpoint=None)
        assert error_codes(spec) == ["delta-without-base"]

    def test_rollout_exceeds_replicas(self):
        # The freshness fleet has 4 replicas; a 1 -> 8 schedule's final
        # stage can never complete.
        spec = self._online_spec(rollout_stages=(1, 8))
        assert error_codes(spec) == ["rollout-exceeds-replicas"]
        # Stages capped at the fleet are fine.
        assert error_codes(self._online_spec(rollout_stages=(1, 4))) == []

    def test_canary_threshold_invalid(self):
        spec = self._online_spec(canary_threshold=0.6)
        assert error_codes(spec) == ["canary-threshold-invalid"]
        spec = self._online_spec(canary_threshold=-0.01)
        assert error_codes(spec) == ["canary-threshold-invalid"]

    def _mt_model(self, **overrides):
        fields = dict(
            variant="flat", embedding_dim=8, bottom_mlp=(16,),
            top_mlp=(16,), tasks=("ctr", "cvr"), head="shared_bottom",
            head_mlp=(8,),
        )
        fields.update(overrides)
        return ModelSpec(**fields)

    def test_cvr_without_ctr(self):
        spec = tiny_quality_spec(
            model=ModelSpec(variant="flat", embedding_dim=8,
                            bottom_mlp=(16,), top_mlp=(16,),
                            tasks=("cvr",)),
        )
        assert error_codes(spec) == ["cvr-without-ctr"]

    def test_task_weight_degenerate(self):
        zero = tiny_quality_spec(
            model=self._mt_model(task_weights=(1.0, 0.0)),
        )
        assert error_codes(zero) == ["task-weight-degenerate"]
        negative = tiny_quality_spec(
            model=self._mt_model(task_weights=(1.0, -0.5)),
        )
        assert error_codes(negative) == ["task-weight-degenerate"]
        # Positive weights of any magnitude are fine.
        ok = tiny_quality_spec(model=self._mt_model(task_weights=(1.0, 0.2)))
        assert error_codes(ok) == []

    def test_ab_arms_identical(self):
        spec = tiny_quality_spec(
            model=self._mt_model(),
            ab=ABSpec(seeds=(0, 1)),
        )
        assert error_codes(spec) == ["ab-arms-identical"]
        # Any resolved difference between the arms clears the code.
        fixed = spec.replace(
            ab=ABSpec(seeds=(0, 1), model_b=self._mt_model(head="dbmtl"))
        )
        assert error_codes(fixed) == []

    def test_invalid_dict_input_maps_to_spec_invalid(self):
        diags = analyze_spec({"serve": {"qps": -5.0}})
        assert [d.code for d in diags] == ["spec-invalid"]
        assert diags[0].severity == "error"

    def test_every_registered_check_has_a_stable_name(self):
        names = set(registered_checks())
        assert {
            "degenerate-data-split",
            "batch-exceeds-train-split",
            "probe-batch-exceeds-split",
            "global-batch-indivisible",
            "shard-capacity-overflow",
            "fetch-tier-overflow",
            "cache-overcommits-memory",
            "flash-outside-trace",
            "checkpoint-resume-missing",
            "warm-start-dead-cache",
            "tier-capacity-misordered",
            "tier-overflow",
            "tier-dead-remote",
            "fault-outside-trace",
            "retry-budget-zero-with-faults",
            "autoscale-bounds-inverted",
            "degraded-mode-without-backing",
            "delta-without-base",
            "rollout-exceeds-replicas",
            "canary-threshold-invalid",
            "cvr-without-ctr",
            "task-weight-degenerate",
            "ab-arms-identical",
        } <= names


# ----------------------------------------------------------------------
class TestWarnings:
    def test_probe_samples_truncated(self):
        spec = tiny_quality_spec(
            train=None,
            partition=PartitionSpec(
                strategy="probe", num_towers=2, probe_samples=100_000
            ),
        )
        assert warning_codes(spec) == ["probe-samples-truncated"]
        assert error_codes(spec) == []

    def test_fleet_oversubscribed(self):
        spec = RunSpec(
            cluster=ClusterSpec(num_hosts=2, gpus_per_host=2),
            serve=ServeSpec(placement="colocated", fleet_replicas=5),
        )
        assert "fleet-oversubscribed" in warning_codes(spec)

    def test_router_degenerate(self):
        spec = RunSpec(
            serve=ServeSpec(
                placement="colocated", fleet_replicas=1, router="p2c"
            ),
        )
        assert "router-degenerate" in warning_codes(spec)

    def test_batcher_never_fills(self):
        spec = RunSpec(
            serve=ServeSpec(
                placement="colocated", num_requests=32, max_batch_size=64,
                key_space=100, cache_rows=50,
            ),
        )
        assert "batcher-never-fills" in warning_codes(spec)

    def test_checkpoint_never_saves(self):
        spec = tiny_quality_spec(
            checkpoint=CheckpointSpec(save_every_steps=10_000),
        )
        assert warning_codes(spec) == ["checkpoint-never-saves"]
        # Warnings never block execution.
        assert error_codes(spec) == []


# ----------------------------------------------------------------------
class TestServeSpecCacheBugfix:
    """Regression: cache_rows > key_space rejected at spec time."""

    def test_overcommitted_cache_rejected(self):
        with pytest.raises(SpecError, match="cache_rows"):
            ServeSpec(cache_rows=1000, key_space=100)

    def test_round_trip_rejects_too(self):
        good = ServeSpec(cache_rows=100, key_space=100)
        payload = good.to_dict()
        payload["cache_rows"] = 101
        with pytest.raises(SpecError, match="cache_rows"):
            ServeSpec.from_dict(payload)

    def test_boundary_is_inclusive(self):
        spec = ServeSpec(cache_rows=100, key_space=100)
        assert spec.cache_rows == 100

    def test_zero_cache_always_valid(self):
        ServeSpec(cache_rows=0, key_space=1)


# ----------------------------------------------------------------------
class TestTierSpecValidation:
    """TierSpec construction rules and the JSON round trip."""

    def test_round_trip_preserves_tuples(self):
        spec = RunSpec(
            serve=ServeSpec(placement="colocated"),
            tiers=TierSpec(
                levels=("dram", "ssd"), cache_rows=(64, 256),
                backing="remote",
            ),
        )
        again = RunSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert again == spec
        # JSON turns tuples into lists; the round trip restores them.
        assert again.tiers.levels == ("dram", "ssd")
        assert again.tiers.cache_rows == (64, 256)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(SpecError, match="equal length"):
            TierSpec(levels=("dram",), cache_rows=())

    def test_unknown_level_rejected(self):
        with pytest.raises(SpecError, match="unknown tier level"):
            TierSpec(levels=("l2",), cache_rows=(64,))

    def test_misordered_levels_rejected(self):
        with pytest.raises(SpecError, match="hierarchy order"):
            TierSpec(levels=("ssd", "dram"), cache_rows=(64, 64))

    def test_unknown_backing_rejected(self):
        with pytest.raises(SpecError, match="backing"):
            TierSpec(backing="ssd")

    def test_negative_rows_rejected(self):
        with pytest.raises(SpecError, match="ints >= 0"):
            TierSpec(levels=("dram",), cache_rows=(-1,))

    def test_tiers_requires_serve(self):
        # A valid training run cannot carry a dangling tiers section.
        with pytest.raises(SpecError, match="needs a serve section"):
            tiny_quality_spec(tiers=TierSpec())


# ----------------------------------------------------------------------
class TestSessionIntegration:
    def test_train_refuses_broken_spec(self):
        spec = tiny_quality_spec(train=TrainSpec(batch_size=512, epochs=1))
        session = Session(spec)
        with pytest.raises(SpecAnalysisError) as err:
            session.train()
        assert any(
            d.code == "batch-exceeds-train-split"
            for d in err.value.diagnostics
        )

    def test_spec_analysis_error_is_a_spec_error(self):
        # Every existing SpecError handler (CLI exit-2 paths) keeps
        # working for analysis rejections.
        assert issubclass(SpecAnalysisError, SpecError)

    def test_analyze_false_opts_out(self):
        spec = RunSpec(
            serve=ServeSpec(
                qps=1000.0,
                num_requests=1000,
                scenario="flash",
                flash_start_s=5.0,
                flash_duration_s=0.5,
                placement="colocated",
                key_space=200,
                cache_rows=64,
                max_batch_size=8,
            ),
        )
        art = Session(spec, analyze=False).serve()
        # The pathological spec executes (flash crowd simply never
        # fires) — the opt-out exists exactly for studying such runs.
        assert art.reports["colocated"].num_requests == 1000

    def test_analyze_stage_is_cached(self):
        session = Session(tiny_quality_spec())
        assert session.analyze() is session.analyze()

    def test_serve_gate_fires_before_any_simulation(self):
        spec = RunSpec(
            cluster=ClusterSpec(
                num_hosts=2, gpus_per_host=1, generation="V100"
            ),
            serve=ServeSpec(placement="disaggregated", emb_hosts=1),
        )
        with pytest.raises(SpecAnalysisError):
            Session(spec).serve()

    def test_warm_start_session_passes_with_real_checkpoint(self, tmp_path):
        """End-to-end: analyzer accepts the warm-start serve spec the
        checkpointing experiment actually builds mid-run."""
        import numpy as np

        from repro.data import train_eval_split
        from repro.models import DLRM, tiny_table_configs
        from repro.models.configs import DenseArch
        from repro.training import TrainConfig, Trainer

        spec = tiny_quality_spec()
        data = spec.data
        from repro.api.session import _dataset_for

        dense, ids, labels = _dataset_for(data).sample(256, seed=1)
        tables = tiny_table_configs(data.num_sparse, data.cardinality, 8)
        model = DLRM(
            data.num_dense,
            tables,
            DenseArch(embedding_dim=8, bottom_mlp=(16,), top_mlp=(16,)),
            rng=np.random.default_rng(0),
        )
        trainer = Trainer(model, TrainConfig(batch_size=64, epochs=1))
        trainer.fit(dense, ids, labels)
        path = save_training_checkpoint(
            str(tmp_path / "ck"), model, trainer
        )
        warm = spec.replace(
            train=None,
            serve=ServeSpec(
                qps=50_000.0, num_requests=100, key_space=200,
                cache_rows=64, placement="colocated",
            ),
            checkpoint=CheckpointSpec(resume_from=path, warm_start=True),
        )
        assert error_codes(warm) == []


# ----------------------------------------------------------------------
class TestCliAnalyzeVerb:
    def _run(self, *args):
        env = dict(os.environ, PYTHONPATH=SRC)
        return subprocess.run(
            [sys.executable, "-m", "repro.experiments.runner", *args],
            capture_output=True,
            text=True,
            env=env,
            cwd=REPO_ROOT,
        )

    def test_clean_spec_exits_zero(self, tmp_path):
        path = str(tmp_path / "ok.json")
        presets.quickstart_spec().save(path)
        proc = self._run("analyze", path)
        assert proc.returncode == 0, proc.stderr
        assert "clean" in proc.stdout

    def test_broken_spec_exits_one_with_code(self, tmp_path):
        spec = RunSpec(
            cluster=ClusterSpec(num_hosts=1, gpus_per_host=1),
            perf=PerfSpec(kind="dlrm"),
        )
        path = str(tmp_path / "bad.json")
        spec.save(path)
        proc = self._run("analyze", path)
        assert proc.returncode == 1
        assert "shard-capacity-overflow" in proc.stdout

    def test_json_output(self, tmp_path):
        spec = RunSpec(
            cluster=ClusterSpec(num_hosts=1, gpus_per_host=1),
            perf=PerfSpec(kind="dlrm"),
        )
        path = str(tmp_path / "bad.json")
        spec.save(path)
        proc = self._run("analyze", path, "--json")
        payload = json.loads(proc.stdout)
        assert payload[0]["code"] == "shard-capacity-overflow"
        assert payload[0]["source"] == "spec"

    def test_unreadable_spec_exits_two(self):
        proc = self._run("analyze", "/nonexistent/spec.json")
        assert proc.returncode == 2

    def test_run_spec_rejects_analysis_errors_as_invalid_spec(
        self, tmp_path
    ):
        spec = tiny_quality_spec(train=TrainSpec(batch_size=512, epochs=1))
        path = str(tmp_path / "broken-train.json")
        spec.save(path)
        proc = self._run("run-spec", path)
        assert proc.returncode == 2
        assert "batch-exceeds-train-split" in proc.stderr
