"""Tests for hotness-driven tier placement (repro.planner.tiering)."""

import numpy as np
import pytest

from repro.checkpoint import (
    accumulator_mass_by_table,
    save_training_checkpoint,
)
from repro.data import SyntheticCriteoConfig, SyntheticCriteoDataset
from repro.hardware import tier_topology
from repro.models import DLRM, tiny_table_configs
from repro.models.configs import DenseArch, criteo_table_configs
from repro.nn import TableConfig
from repro.planner import (
    TierPlacementPlan,
    TierPlanner,
    plan_from_checkpoint,
    zipf_mass,
)
from repro.training import TrainConfig, Trainer


def small_tables():
    return [
        TableConfig("hot", 10_000, 16, pooling=1),
        TableConfig("cold", 50_000, 16, pooling=1),
    ]


class TestZipfMass:
    def test_matches_exact_harmonic_sum(self):
        bounds = [0, 10, 100, 1000]
        mass = zipf_mass(1000, 1.2, bounds)
        ranks = np.arange(1, 1001, dtype=float) ** -1.2
        for i, (a, b) in enumerate(zip(bounds[:-1], bounds[1:])):
            assert mass[i] == pytest.approx(ranks[a:b].sum())

    def test_zero_skew_is_uniform(self):
        mass = zipf_mass(100, 0.0, [0, 25, 50, 100])
        assert mass[0] == pytest.approx(25.0)
        assert mass[2] == pytest.approx(50.0)

    def test_integral_approximation_close_on_tail_segments(self):
        """Beyond the exact-sum limit (where only tail segments live,
        thanks to the geometric chunking) the midpoint integral is
        within 1e-6 of the exact sum."""
        a, b = 1 << 20, (1 << 21) + 64  # length > exact-sum limit
        approx = zipf_mass(b, 1.1, [a, b])[0]
        exact = float(
            np.sum(np.arange(a + 1, b + 1, dtype=np.float64) ** -1.1)
        )
        assert approx == pytest.approx(exact, rel=1e-6)


class TestTierPlanner:
    def _plan(self, budgets=None, skew=1.1, tables=None):
        topo = tier_topology("A100")
        planner = TierPlanner(topology=topo, budgets=budgets)
        return planner.plan(tables or small_tables(), skew)

    def test_every_row_placed_exactly_once(self):
        plan = self._plan(budgets={"hbm": 64_000.0, "dram": 640_000.0})
        placed = {t.name: 0 for t in plan.tables}
        for a in plan.assignments:
            placed[a.table] += a.num_rows
        assert placed == {"hot": 10_000, "cold": 50_000}

    def test_access_fractions_sum_to_one(self):
        plan = self._plan(budgets={"hbm": 64_000.0, "dram": 640_000.0})
        total = sum(a.access_fraction for a in plan.assignments)
        assert total == pytest.approx(1.0)

    def test_hottest_ranks_land_in_fastest_tier(self):
        plan = self._plan(budgets={"hbm": 64_000.0, "dram": 640_000.0})
        by_tier = {}
        for a in plan.assignments:
            by_tier.setdefault((a.table, a.tier), []).append(a.row_start)
        # The hot table's rank-0 chunk must sit in HBM, not below.
        assert ("hot", "hbm") in by_tier
        assert min(by_tier[("hot", "hbm")]) == 0

    def test_budgets_respected(self):
        budgets = {"hbm": 64_000.0, "dram": 640_000.0}
        plan = self._plan(budgets=budgets)
        by_tier = plan.bytes_by_tier()
        assert by_tier["hbm"] <= budgets["hbm"]
        assert by_tier["dram"] <= budgets["dram"]

    def test_overflow_raises(self):
        topo = tier_topology("A100", names=("hbm",))
        planner = TierPlanner(topology=topo, budgets={"hbm": 1_000.0})
        with pytest.raises(ValueError, match="do not fit"):
            planner.plan(small_tables(), 1.1)

    def test_skewed_spill_fraction_beats_table_fraction(self):
        """At skew > 1 the HBM-resident head absorbs far more than its
        share of rows — the entire point of hotness-aware placement."""
        budgets = {"hbm": 64_000.0, "dram": 64_000_000.0}
        plan = self._plan(budgets=budgets, skew=1.2)
        rows = plan.rows_by_tier()
        hbm_row_share = rows["hbm"] / sum(rows.values())
        hbm_access = plan.access_fraction_by_tier()["hbm"]
        assert hbm_access > 5 * hbm_row_share
        assert plan.spill_fraction == pytest.approx(1.0 - hbm_access)

    def test_uniform_access_fraction_tracks_rows(self):
        """One table, skew 0: a tier's access share is its row share.
        (Across tables, mass is normalized per table and weighted by
        pooling — each table contributes `pooling` lookups/sample.)"""
        tables = [TableConfig("t", 60_000, 16, pooling=1)]
        budgets = {"hbm": 64_000.0, "dram": 64_000_000.0}
        plan = self._plan(budgets=budgets, skew=0.0, tables=tables)
        rows = plan.rows_by_tier()
        fracs = plan.access_fraction_by_tier()
        share = rows["hbm"] / sum(rows.values())
        assert fracs["hbm"] == pytest.approx(share, rel=1e-6)

    def test_measured_hotness_dict(self):
        """Per-row accumulator mass: the hot half of each table wins
        the fast tier regardless of id order."""
        tables = [TableConfig("t", 1024, 16, pooling=1)]
        mass = np.zeros(1024)
        mass[::2] = 100.0  # even ids hot
        topo = tier_topology("A100", names=("hbm", "dram"))
        # Budget aligned to the geometric chunk boundary at rank 512,
        # so the 512 hot ranks land in HBM whole.
        planner = TierPlanner(
            topology=topo, budgets={"hbm": 512 * 64.0, "dram": 1e12}
        )
        plan = planner.plan(tables, {"t": mass})
        fracs = plan.access_fraction_by_tier()
        assert fracs["hbm"] == pytest.approx(1.0)

    def test_mismatched_hotness_length_raises(self):
        topo = tier_topology("A100", names=("hbm", "dram"))
        planner = TierPlanner(topology=topo)
        with pytest.raises(ValueError, match="rows"):
            planner.plan(
                [TableConfig("t", 100, 16, pooling=1)],
                {"t": np.ones(7)},
            )

    def test_paper_scale_criteo_fits_hierarchy(self):
        """The acceptance geometry: Criteo tables outgrow one GPU's
        HBM and the hierarchy absorbs the spill with tiny access
        loss."""
        topo = tier_topology("A100")
        plan = TierPlanner(topology=topo).plan(
            criteo_table_configs(), 1.05
        )
        summary = plan.summary()
        gb = summary["gb_by_tier"]
        assert gb["hbm"] <= 80.0 + 1e-6
        assert sum(gb.values()) > 80.0  # genuinely spills
        assert summary["spill_fraction"] < 0.05
        assert summary["dollars"] > 0.0
        assert summary["expected_fetch_us_per_lookup"] >= 0.0

    def test_summary_is_json_shaped(self):
        import json

        plan = self._plan(budgets={"hbm": 64_000.0, "dram": 640_000.0})
        json.dumps(plan.summary())

    def test_plan_is_deterministic(self):
        a = self._plan(budgets={"hbm": 64_000.0, "dram": 640_000.0})
        b = self._plan(budgets={"hbm": 64_000.0, "dram": 640_000.0})
        assert a.assignments == b.assignments


class TestPlanFromCheckpoint:
    def _checkpoint(self, tmp_path):
        config = SyntheticCriteoConfig(
            num_dense=4, num_sparse=4, cardinality=50
        )
        ds = SyntheticCriteoDataset(config, seed=0)
        dense, ids, labels = ds.sample(400, seed=1)
        tables = tiny_table_configs(4, 50, 8)
        model = DLRM(
            4,
            tables,
            DenseArch(embedding_dim=8, bottom_mlp=(8,), top_mlp=(8,)),
            rng=np.random.default_rng(0),
        )
        trainer = Trainer(
            model, TrainConfig(batch_size=50, epochs=1, seed=3)
        )
        trainer.fit(dense, ids, labels)
        path = save_training_checkpoint(
            str(tmp_path / "ck"), model, trainer
        )
        return path, tables

    def test_accumulator_mass_by_table(self, tmp_path):
        path, tables = self._checkpoint(tmp_path)
        masses = accumulator_mass_by_table(path)
        assert set(masses) == {t.name for t in tables}
        for t in tables:
            assert masses[t.name].shape == (t.num_embeddings,)
            assert (masses[t.name] >= 0).all()
            assert masses[t.name].sum() > 0  # training touched rows

    def test_plan_from_checkpoint_places_all_rows(self, tmp_path):
        path, tables = self._checkpoint(tmp_path)
        topo = tier_topology("A100", names=("hbm", "dram"))
        plan = plan_from_checkpoint(
            path, tables, topo, budgets={"hbm": 40 * 32.0, "dram": 1e12}
        )
        assert isinstance(plan, TierPlacementPlan)
        rows = plan.rows_by_tier()
        assert sum(rows.values()) == sum(t.num_embeddings for t in tables)
        # Touched (hot) rows beat untouched ones into the HBM budget:
        # 40 of 200 rows (20%) absorb well over 2x their uniform share.
        assert plan.access_fraction_by_tier()["hbm"] > 0.4

    def test_missing_table_falls_back_to_cold(self, tmp_path):
        path, tables = self._checkpoint(tmp_path)
        extra = list(tables) + [TableConfig("absent", 100, 8, pooling=1)]
        topo = tier_topology("A100", names=("hbm", "dram"))
        plan = plan_from_checkpoint(
            path, extra, topo, budgets={"hbm": 40 * 32.0, "dram": 1e12}
        )
        # The absent table has zero mass everywhere: no HBM claim.
        absent = [
            a for a in plan.assignments
            if a.table == "absent" and a.tier == "hbm"
        ]
        assert not absent
