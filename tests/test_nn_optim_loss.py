"""Tests for losses, optimizers, and the LR schedule."""

import numpy as np
import pytest

from repro.nn import SGD, Adagrad, Adam, BCEWithLogitsLoss, Linear, Parameter
from repro.nn.functional import bce_with_logits, sigmoid
from repro.nn.optim import WarmupDecaySchedule
from tests.util import numeric_grad


@pytest.fixture
def rng():
    return np.random.default_rng(5)


class TestBCEWithLogits:
    def test_matches_naive_formula_in_safe_range(self, rng):
        loss = BCEWithLogitsLoss()
        z = rng.uniform(-3, 3, size=10)
        y = rng.integers(0, 2, size=10).astype(float)
        got = loss(z, y)
        p = sigmoid(z)
        naive = -(y * np.log(p) + (1 - y) * np.log(1 - p)).mean()
        assert got == pytest.approx(naive)

    def test_stable_at_extreme_logits(self):
        loss = BCEWithLogitsLoss()
        val = loss(np.array([1000.0, -1000.0]), np.array([1.0, 0.0]))
        assert np.isfinite(val) and val == pytest.approx(0.0, abs=1e-9)

    def test_gradient_matches_numeric(self, rng):
        loss = BCEWithLogitsLoss()
        z = rng.uniform(-2, 2, size=6)
        y = rng.integers(0, 2, size=6).astype(float)
        loss(z, y)
        analytic = loss.backward()
        num = numeric_grad(lambda zz: BCEWithLogitsLoss()(zz, y), z.copy())
        np.testing.assert_allclose(analytic, num, atol=1e-7)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            BCEWithLogitsLoss()(np.zeros(3), np.zeros(4))

    def test_target_range_validated(self):
        with pytest.raises(ValueError):
            BCEWithLogitsLoss()(np.zeros(2), np.array([0.0, 2.0]))


def quadratic_param(start):
    """Parameter minimizing f(w) = 0.5*||w||^2 (grad = w)."""
    return Parameter(np.array(start, dtype=float), name="w")


class TestOptimizers:
    def test_sgd_step(self):
        p = quadratic_param([1.0, -2.0])
        opt = SGD([p], lr=0.1)
        p.add_grad(p.data.copy())
        opt.step()
        np.testing.assert_allclose(p.data, [0.9, -1.8])

    def test_sgd_momentum_accelerates(self):
        losses = {}
        for mom in (0.0, 0.9):
            p = quadratic_param([10.0])
            opt = SGD([p], lr=0.01, momentum=mom)
            for _ in range(50):
                opt.zero_grad()
                p.add_grad(p.data.copy())
                opt.step()
            losses[mom] = abs(p.data[0])
        assert losses[0.9] < losses[0.0]

    def test_adagrad_converges_on_quadratic(self):
        p = quadratic_param([5.0, -5.0])
        opt = Adagrad([p], lr=1.0)
        for _ in range(200):
            opt.zero_grad()
            p.add_grad(p.data.copy())
            opt.step()
        assert np.abs(p.data).max() < 0.1

    def test_adam_converges_on_quadratic(self):
        p = quadratic_param([5.0, -5.0])
        opt = Adam([p], lr=0.2)
        for _ in range(200):
            opt.zero_grad()
            p.add_grad(p.data.copy())
            opt.step()
        assert np.abs(p.data).max() < 0.05

    def test_adam_first_step_size_is_lr(self):
        """Bias correction makes the first Adam step ~= lr * sign(g)."""
        p = quadratic_param([1.0])
        opt = Adam([p], lr=0.1)
        p.add_grad(np.array([0.3]))
        opt.step()
        assert p.data[0] == pytest.approx(1.0 - 0.1, abs=1e-6)

    def test_skips_params_without_grad(self):
        p1, p2 = quadratic_param([1.0]), quadratic_param([1.0])
        opt = SGD([p1, p2], lr=0.5)
        p1.add_grad(np.array([1.0]))
        opt.step()
        assert p1.data[0] == 0.5 and p2.data[0] == 1.0

    def test_invalid_lr_raises(self):
        with pytest.raises(ValueError):
            SGD([quadratic_param([1.0])], lr=0.0)

    def test_empty_params_raises(self):
        with pytest.raises(ValueError):
            Adam([], lr=0.1)

    def test_training_reproducibility(self, rng):
        """Same seed + same data => bitwise identical trajectories."""

        def run(seed):
            r = np.random.default_rng(seed)
            layer = Linear(4, 1, rng=np.random.default_rng(42))
            opt = Adam(layer.parameters(), lr=0.01)
            x = r.standard_normal((32, 4))
            y = r.integers(0, 2, 32).astype(float)
            loss = BCEWithLogitsLoss()
            vals = []
            for _ in range(5):
                opt.zero_grad()
                out = layer(x).reshape(-1)
                vals.append(loss(out, y))
                layer.backward(loss.backward().reshape(-1, 1))
                opt.step()
            return vals, layer.weight.data.copy()

        v1, w1 = run(9)
        v2, w2 = run(9)
        assert v1 == v2
        np.testing.assert_array_equal(w1, w2)


class TestWarmupDecaySchedule:
    def test_warmup_ramps_linearly(self):
        sched = WarmupDecaySchedule(peak_lr=1.0, warmup_steps=10)
        assert sched.lr_at(0) == pytest.approx(0.1)
        assert sched.lr_at(4) == pytest.approx(0.5)
        assert sched.lr_at(9) == pytest.approx(1.0)

    def test_decay_is_inverse_sqrt(self):
        sched = WarmupDecaySchedule(peak_lr=1.0, warmup_steps=0, decay_start=100)
        assert sched.lr_at(100) == pytest.approx(1.0)
        assert sched.lr_at(400) == pytest.approx(0.5)

    def test_apply_mutates_optimizer(self):
        p = quadratic_param([1.0])
        opt = SGD([p], lr=1.0)
        sched = WarmupDecaySchedule(peak_lr=0.5, warmup_steps=2)
        sched.apply(opt, 0)
        assert opt.lr == pytest.approx(0.25)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            WarmupDecaySchedule(peak_lr=0.0, warmup_steps=1)


class TestParameterBasics:
    def test_add_grad_shape_check(self):
        p = Parameter(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            p.add_grad(np.zeros(3))

    def test_bce_as_function(self):
        vals = bce_with_logits(np.array([0.0]), np.array([1.0]))
        assert vals[0] == pytest.approx(np.log(2))
