"""Tests for the sharding planner and NeuroShard-style baseline."""

import pytest

from repro.hardware import Cluster
from repro.models import criteo_table_configs
from repro.nn.embedding import TableConfig
from repro.planner import (
    AutoPlanner,
    PlannerConfig,
    ShardingPlan,
    ShardingType,
    TableShard,
    balance_analysis,
    balanced_plan,
)


def tables(n=6, rows=1000, dim=32, pooling=1):
    return [
        TableConfig(f"t{i}", rows * (i + 1), dim, pooling=pooling)
        for i in range(n)
    ]


class TestTableShard:
    def test_valid_shard(self):
        t = TableConfig("t", 100, 16)
        s = TableShard(t, 0, ShardingType.TABLE_WISE, 0, 100, 0, 16)
        assert s.num_rows == 100 and s.num_cols == 16
        assert s.storage_bytes() == 100 * 16 * 4

    def test_invalid_ranges(self):
        t = TableConfig("t", 100, 16)
        with pytest.raises(ValueError):
            TableShard(t, 0, ShardingType.TABLE_WISE, 0, 101, 0, 16)
        with pytest.raises(ValueError):
            TableShard(t, 0, ShardingType.COLUMN_WISE, 0, 100, 8, 8)

    def test_output_bytes_column_wise(self):
        t = TableConfig("t", 100, 16)
        s = TableShard(t, 0, ShardingType.COLUMN_WISE, 0, 100, 0, 8)
        assert s.output_bytes_per_sample() == 8 * 4

    def test_output_bytes_row_wise_full_dim(self):
        t = TableConfig("t", 100, 16, pooling=4)
        s = TableShard(t, 0, ShardingType.ROW_WISE, 0, 50, 0, 16)
        assert s.output_bytes_per_sample() == 16 * 4


class TestAutoPlanner:
    def test_plan_covers_all_tables(self):
        plan = AutoPlanner(4).plan(tables())
        plan.validate_coverage(tables())

    def test_table_wise_by_default(self):
        planner = AutoPlanner(4, PlannerConfig(column_factor=1))
        for t in tables():
            assert planner.choose_sharding(t) is ShardingType.TABLE_WISE

    def test_multi_hot_goes_row_wise(self):
        planner = AutoPlanner(4)
        t = TableConfig("mh", 1000, 32, pooling=8)
        assert planner.choose_sharding(t) is ShardingType.ROW_WISE

    def test_column_factor_splits_tables(self):
        planner = AutoPlanner(8, PlannerConfig(column_factor=4))
        plan = planner.plan(tables(n=2))
        for t in tables(n=2):
            assert len(plan.shards_of(t.name)) == 4

    def test_row_wise_spreads_across_ranks(self):
        planner = AutoPlanner(4)
        plan = planner.plan([TableConfig("mh", 1000, 32, pooling=8)])
        shards = plan.shards_of("mh")
        assert len(shards) == 4
        assert sorted(s.rank for s in shards) == [0, 1, 2, 3]

    def test_balance_better_with_column_sharding(self):
        """§5.1: column factor taps the whole cluster's bandwidth."""
        skewed = [TableConfig("big", 10_000_000, 64)] + [
            TableConfig(f"s{i}", 1000, 64) for i in range(3)
        ]
        naive = AutoPlanner(8, PlannerConfig(column_factor=1)).plan(skewed)
        split = AutoPlanner(8, PlannerConfig(column_factor=8)).plan(skewed)
        assert split.imbalance() < naive.imbalance()

    def test_table_wise_plan_owner_list(self):
        owners = AutoPlanner(4).table_wise_plan(tables())
        assert len(owners) == 6
        assert all(0 <= o < 4 for o in owners)

    def test_empty_tables_rejected(self):
        with pytest.raises(ValueError):
            AutoPlanner(4).plan([])

    def test_invalid_world_size(self):
        with pytest.raises(ValueError):
            AutoPlanner(0)

    def test_invalid_column_factor(self):
        with pytest.raises(ValueError):
            PlannerConfig(column_factor=0)


class TestShardingPlan:
    def test_rank_accounting(self):
        plan = ShardingPlan(world_size=2)
        t = TableConfig("t", 100, 16)
        plan.add(TableShard(t, 0, ShardingType.TABLE_WISE, 0, 100, 0, 16))
        assert plan.storage_by_rank() == [100 * 16 * 4, 0]
        assert len(plan.shards_on(0)) == 1 and not plan.shards_on(1)

    def test_invalid_rank_rejected(self):
        plan = ShardingPlan(world_size=2)
        t = TableConfig("t", 100, 16)
        with pytest.raises(ValueError):
            plan.add(TableShard(t, 5, ShardingType.TABLE_WISE, 0, 100, 0, 16))

    def test_coverage_detects_missing(self):
        plan = ShardingPlan(world_size=2)
        t = TableConfig("t", 100, 16)
        plan.add(TableShard(t, 0, ShardingType.COLUMN_WISE, 0, 100, 0, 8))
        with pytest.raises(ValueError, match="cover"):
            plan.validate_coverage([t])

    def test_imbalance_of_empty_plan_raises(self):
        with pytest.raises(ValueError):
            ShardingPlan(world_size=2).imbalance()


class TestNeuroShardBaseline:
    def test_balanced_plan_is_balanced(self):
        plan = balanced_plan(criteo_table_configs(), 64)
        assert plan.imbalance(batch_size=128) < 1.5

    def test_balance_analysis_reproduces_negative_result(self):
        """§2.4: balance gain >> AlltoAll gain."""
        analysis = balance_analysis(
            criteo_table_configs(),
            Cluster(num_hosts=8, gpus_per_host=8, generation="A100"),
            batch_size=4096,
        )
        assert analysis.imbalance_balanced < analysis.imbalance_naive
        # Perfect balance does not fix the collective: the time gain is
        # bounded by the imbalance it removes, and stays far from the
        # multi-x speedups DMT reaches.
        assert analysis.alltoall_gain <= analysis.straggler_gain * 1.05
        assert analysis.alltoall_gain < 2.5
