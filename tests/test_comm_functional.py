"""Tests for functional (real data movement) collectives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm import functional as F
from repro.comm.process_group import ProcessGroup, global_group, peer_groups
from repro.hardware import Cluster


@pytest.fixture
def group4():
    return global_group(Cluster(num_hosts=2, gpus_per_host=2))


def rank_arrays(group, shape=(4,), seed=0):
    rng = np.random.default_rng(seed)
    return {r: rng.standard_normal(shape) for r in group.ranks}


class TestAlltoAll:
    def test_paper_figure4_pattern(self, group4):
        """Figure 4 step (a)/(c): rank r receives bucket r from everyone."""
        inputs = {
            r: [np.array([r * 10 + j]) for j in range(4)] for r in group4.ranks
        }
        out = F.alltoall(group4, inputs)
        for i, r in enumerate(group4.ranks):
            received = [int(a[0]) for a in out[r]]
            assert received == [src * 10 + i for src in group4.ranks]

    def test_is_involution_for_symmetric_pattern(self, group4):
        """AlltoAll twice returns the original layout (transpose^2 = id)."""
        inputs = {r: [np.array([r, j]) for j in range(4)] for r in group4.ranks}
        once = F.alltoall(group4, inputs)
        twice = F.alltoall(group4, once)
        for r in group4.ranks:
            for j in range(4):
                np.testing.assert_array_equal(twice[r][j], inputs[r][j])

    def test_wrong_bucket_count_raises(self, group4):
        inputs = {r: [np.zeros(1)] * 3 for r in group4.ranks}
        with pytest.raises(ValueError, match="buckets"):
            F.alltoall(group4, inputs)

    def test_membership_mismatch_raises(self, group4):
        inputs = {r: [np.zeros(1)] * 4 for r in [0, 1, 2]}
        with pytest.raises(ValueError, match="membership"):
            F.alltoall(group4, inputs)

    def test_preserves_total_data(self, group4):
        inputs = {
            r: [np.full((2,), r * 4 + j, dtype=float) for j in range(4)]
            for r in group4.ranks
        }
        out = F.alltoall(group4, inputs)
        in_sum = sum(a.sum() for bufs in inputs.values() for a in bufs)
        out_sum = sum(a.sum() for bufs in out.values() for a in bufs)
        assert in_sum == pytest.approx(out_sum)


class TestAlltoAllSingle:
    def test_round_trip(self, group4):
        inputs = {r: np.arange(8, dtype=float) + 100 * r for r in group4.ranks}
        out = F.alltoall_single(group4, inputs)
        back = F.alltoall_single(group4, out)
        for r in group4.ranks:
            np.testing.assert_array_equal(back[r], inputs[r])

    def test_chunk_routing(self, group4):
        inputs = {r: np.repeat(np.arange(4), 2) + 10 * r for r in group4.ranks}
        out = F.alltoall_single(group4, inputs)
        # rank 1 receives chunk 1 of every rank, in group order
        expected = np.concatenate([[1, 1], [11, 11], [21, 21], [31, 31]])
        np.testing.assert_array_equal(out[1], expected)

    def test_indivisible_axis_raises(self, group4):
        inputs = {r: np.zeros(7) for r in group4.ranks}
        with pytest.raises(ValueError, match="divisible"):
            F.alltoall_single(group4, inputs)

    def test_axis1(self, group4):
        inputs = {r: np.arange(8, dtype=float).reshape(2, 4) + r for r in group4.ranks}
        out = F.alltoall_single(group4, inputs, axis=1)
        assert out[0].shape == (2, 4)
        np.testing.assert_array_equal(out[0][:, 0], inputs[0][:, 0])
        np.testing.assert_array_equal(out[0][:, 1], inputs[1][:, 0])


class TestAllReduce:
    def test_sum(self, group4):
        inputs = {r: np.full((3,), float(r)) for r in group4.ranks}
        out = F.allreduce(group4, inputs)
        for r in group4.ranks:
            np.testing.assert_allclose(out[r], np.full((3,), 6.0))

    def test_results_independent_copies(self, group4):
        inputs = rank_arrays(group4)
        out = F.allreduce(group4, inputs)
        out[0][0] = 1e9
        assert out[1][0] != 1e9

    def test_shape_mismatch_raises(self, group4):
        inputs = {r: np.zeros(3 if r else 4) for r in group4.ranks}
        with pytest.raises(ValueError, match="shapes"):
            F.allreduce(group4, inputs)


class TestReduceScatterAllGather:
    def test_reducescatter_then_allgather_equals_allreduce(self, group4):
        inputs = rank_arrays(group4, shape=(8,))
        rs = F.reducescatter(group4, inputs)
        ag = F.allgather(group4, rs)
        ar = F.allreduce(group4, inputs)
        for r in group4.ranks:
            np.testing.assert_allclose(ag[r], ar[r])

    def test_reducescatter_chunks(self, group4):
        inputs = {r: np.arange(4, dtype=float) for r in group4.ranks}
        out = F.reducescatter(group4, inputs)
        for i, r in enumerate(group4.ranks):
            np.testing.assert_allclose(out[r], [4.0 * i])

    def test_indivisible_raises(self, group4):
        inputs = {r: np.zeros(6) for r in group4.ranks}
        with pytest.raises(ValueError, match="divisible"):
            F.reducescatter(group4, inputs)


class TestBroadcast:
    def test_broadcast_from_each_source(self, group4):
        inputs = rank_arrays(group4)
        for src in group4.ranks:
            out = F.broadcast(group4, inputs, src=src)
            for r in group4.ranks:
                np.testing.assert_array_equal(out[r], inputs[src])

    def test_bad_source_raises(self, group4):
        inputs = rank_arrays(group4)
        with pytest.raises(KeyError):
            F.broadcast(group4, inputs, src=99)


class TestSubGroups:
    def test_peer_group_alltoall_stays_within_group(self):
        cluster = Cluster(num_hosts=4, gpus_per_host=2)
        for pg in peer_groups(cluster):
            inputs = {
                r: [np.array([r * 100 + j]) for j in range(pg.world_size)]
                for r in pg.ranks
            }
            out = F.alltoall(pg, inputs)
            assert set(out) == set(pg.ranks)

    def test_group_rank_lookup(self):
        cluster = Cluster(num_hosts=4, gpus_per_host=2)
        pg = peer_groups(cluster)[1]  # ranks (1, 3, 5, 7)
        assert pg.group_rank(5) == 2
        with pytest.raises(KeyError):
            pg.group_rank(0)

    def test_duplicate_ranks_rejected(self):
        cluster = Cluster(num_hosts=1, gpus_per_host=4)
        with pytest.raises(ValueError, match="duplicate"):
            ProcessGroup(cluster, (0, 0, 1))

    def test_cross_host_fraction(self):
        cluster = Cluster(num_hosts=4, gpus_per_host=2)
        assert global_group(cluster).cross_host_fraction() == pytest.approx(6 / 7)
        assert peer_groups(cluster)[0].cross_host_fraction() == pytest.approx(1.0)


@settings(max_examples=25, deadline=None)
@given(
    hosts=st.integers(1, 4),
    gpus=st.integers(1, 4),
    length=st.integers(1, 5),
    seed=st.integers(0, 2**16),
)
def test_alltoall_single_round_trip_property(hosts, gpus, length, seed):
    """Property: alltoall_single is its own inverse for any world shape."""
    cluster = Cluster(num_hosts=hosts, gpus_per_host=gpus)
    group = global_group(cluster)
    rng = np.random.default_rng(seed)
    inputs = {
        r: rng.standard_normal(group.world_size * length) for r in group.ranks
    }
    back = F.alltoall_single(group, F.alltoall_single(group, inputs))
    for r in group.ranks:
        np.testing.assert_array_equal(back[r], inputs[r])


@settings(max_examples=25, deadline=None)
@given(
    hosts=st.integers(1, 3),
    gpus=st.integers(1, 3),
    seed=st.integers(0, 2**16),
)
def test_allreduce_invariant_under_rank_permutation(hosts, gpus, seed):
    """Property: allreduce result does not depend on who holds what."""
    cluster = Cluster(num_hosts=hosts, gpus_per_host=gpus)
    group = global_group(cluster)
    rng = np.random.default_rng(seed)
    arrays = [rng.standard_normal(4) for _ in group.ranks]
    a = F.allreduce(group, dict(zip(group.ranks, arrays)))
    b = F.allreduce(group, dict(zip(group.ranks, arrays[::-1])))
    np.testing.assert_allclose(a[0], b[0])
