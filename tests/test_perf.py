"""Tests for the performance-model stack (profiles, iteration model,
Alpa search, quantization)."""

import numpy as np
import pytest

from repro.hardware import Cluster
from repro.perf import (
    IterationLatencyModel,
    ModelProfile,
    PerfCalibration,
    dmt_dcn_profile,
    dmt_dlrm_profile,
    dmt_xlrm_profile,
    enumerate_dense_parallelism,
    paper_dcn_profile,
    paper_dlrm_profile,
    quantization_discussion,
    sptt_only_profile,
    xlrm_profile,
)
from repro.perf.alpa_search import latency_cdf
from repro.perf.quantization import precision_sweep

B = 16384


@pytest.fixture
def model():
    return IterationLatencyModel()


class TestProfiles:
    def test_dlrm_flops_match_table4(self):
        assert paper_dlrm_profile().training_mflops == pytest.approx(
            14.74, rel=0.05
        )

    def test_dcn_flops_match_table4(self):
        assert paper_dcn_profile().training_mflops == pytest.approx(
            96.22, rel=0.05
        )

    def test_dmt_dlrm_flops_match_table4(self):
        assert dmt_dlrm_profile(8).training_mflops == pytest.approx(
            8.95, rel=0.05
        )

    def test_dmt_dcn_flops_monotone_toward_baseline(self):
        """Table 4's DCN column: flops grow with tower count, below base."""
        flops = [dmt_dcn_profile(t).training_mflops for t in (2, 4, 8, 16)]
        assert flops == sorted(flops)
        assert flops[-1] < paper_dcn_profile().training_mflops

    def test_dmt_dlrm_compression_ratio(self):
        assert dmt_dlrm_profile(8, tower_dim=64).compression_ratio == 2.0
        assert dmt_dlrm_profile(8, tower_dim=8).compression_ratio == 16.0

    def test_sptt_only_profile_strips_towers(self):
        base = paper_dlrm_profile()
        sptt = sptt_only_profile(base, 8)
        assert sptt.tower_mflops == 0
        assert sptt.compression_ratio == 1.0
        assert sptt.num_towers == 8

    def test_xlrm_profile_scale(self):
        prof = xlrm_profile()
        assert prof.total_mflops == pytest.approx(700.0)
        dmt = dmt_xlrm_profile(16)
        assert dmt.compression_ratio > 1.0

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            ModelProfile("x", -1, 0, 26, 128, 1, 1, 0, 1.0, 0)
        with pytest.raises(ValueError):
            ModelProfile("x", 10, 20, 26, 128, 1, 1, 0, 1.0, 0)
        with pytest.raises(ValueError):
            ModelProfile("x", 10, 0, 26, 128, 1, 1, 0, 0.5, 0)


class TestIterationModel:
    def test_breakdown_components_positive(self, model):
        bd = model.hybrid(paper_dlrm_profile(), Cluster(8, 8, "A100"), B)
        assert bd.compute_s > 0 and bd.exposed_emb_s > 0
        assert bd.total_s == pytest.approx(
            bd.compute_s + bd.exposed_emb_s + bd.exposed_dense_s + bd.other_s
        )

    def test_percentages_sum_to_100(self, model):
        bd = model.hybrid(paper_dcn_profile(), Cluster(8, 8, "H100"), B)
        assert sum(bd.percentages().values()) == pytest.approx(100.0)

    def test_figure1_shape(self, model):
        """Compute ~70%, exposed comm ~27% for DCN at 64xH100."""
        pct = model.hybrid(
            paper_dcn_profile(), Cluster(8, 8, "H100"), B
        ).percentages()
        assert pct["compute"] == pytest.approx(70.4, abs=8)
        assert pct["exposed_emb_comm"] == pytest.approx(27.5, abs=8)

    def test_emb_comm_share_grows_with_scale(self, model):
        small = model.hybrid(paper_dlrm_profile(), Cluster(2, 8, "H100"), B)
        large = model.hybrid(paper_dlrm_profile(), Cluster(64, 8, "H100"), B)
        assert (
            large.percentages()["exposed_emb_comm"]
            > small.percentages()["exposed_emb_comm"]
        )

    def test_dmt_requires_matching_towers(self, model):
        with pytest.raises(ValueError, match="towers"):
            model.dmt(dmt_dlrm_profile(8), Cluster(4, 8, "A100"), B)

    def test_dmt_rejects_flat_profile(self, model):
        with pytest.raises(ValueError, match="towers"):
            model.dmt(paper_dlrm_profile(), Cluster(8, 8, "A100"), B)

    def test_dmt_speedup_grows_with_scale_dlrm(self, model):
        s16 = model.speedup(
            paper_dlrm_profile(), dmt_dlrm_profile(2), Cluster(2, 8, "H100"), B
        )
        s512 = model.speedup(
            paper_dlrm_profile(),
            sptt_only_profile(dmt_dlrm_profile(26), 64),
            Cluster(64, 8, "H100"),
            B,
        )
        assert s512 > s16

    def test_compression_reduces_dmt_comm(self, model):
        cluster = Cluster(8, 8, "A100")
        cr2 = model.dmt(dmt_dlrm_profile(8, tower_dim=64), cluster, B)
        cr16 = model.dmt(dmt_dlrm_profile(8, tower_dim=8), cluster, B)
        assert cr16.emb_comm_total_s < cr2.emb_comm_total_s

    def test_xlrm_speedup_below_dlrm(self, model):
        """§5.3.1: compute-bound XLRM gains less."""
        cluster = Cluster(16, 8, "A100")
        s_xlrm = model.speedup(
            xlrm_profile(), dmt_xlrm_profile(16), cluster, B
        )
        s_dlrm = model.speedup(
            paper_dlrm_profile(),
            dmt_dlrm_profile(16, tower_dim=128, c=0, p=1),
            cluster,
            B,
        )
        assert s_xlrm < s_dlrm

    def test_invalid_batch(self, model):
        with pytest.raises(ValueError):
            model.hybrid(paper_dlrm_profile(), Cluster(2, 8, "A100"), 0)

    def test_calibration_validation(self):
        with pytest.raises(ValueError):
            PerfCalibration(overlap_hybrid=1.5)
        with pytest.raises(ValueError):
            PerfCalibration(dmt_compute_efficiency=0.0)

    def test_overlap_ramp(self):
        cal = PerfCalibration()
        assert cal.dmt_overlap_at(2) == pytest.approx(0.0)
        assert cal.dmt_overlap_at(8) > cal.dmt_overlap_at(4)
        assert cal.dmt_overlap_at(64) <= cal.overlap_cap
        with pytest.raises(ValueError):
            cal.dmt_overlap_at(0)


class TestAlpaSearch:
    def test_enumeration_covers_factorizations(self):
        configs = enumerate_dense_parallelism(
            paper_dlrm_profile(), Cluster(2, 8, "A100"), B
        )
        labels = {c.label for c in configs}
        assert "dp16-tp1-pp1" in labels
        assert "dp1-tp16-pp1" in labels
        assert all(c.dp * c.tp * c.pp == 16 for c in configs)

    def test_data_parallel_wins_for_dlrm(self):
        """Figure 6's conclusion."""
        configs = enumerate_dense_parallelism(
            paper_dlrm_profile(), Cluster(8, 8, "A100"), B
        )
        assert configs[0].is_pure_data_parallel

    def test_tensor_parallel_much_slower(self):
        configs = enumerate_dense_parallelism(
            paper_dlrm_profile(), Cluster(8, 8, "A100"), B
        )
        by_label = {c.label: c.iteration_seconds for c in configs}
        assert by_label["dp1-tp64-pp1"] > 2 * by_label["dp64-tp1-pp1"]

    def test_cdf_shape(self):
        configs = enumerate_dense_parallelism(
            paper_dlrm_profile(), Cluster(2, 8, "A100"), B
        )
        lat, frac = latency_cdf(configs)
        assert lat.shape == frac.shape
        assert np.all(np.diff(lat) >= 0)
        assert frac[-1] == pytest.approx(1.0)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            enumerate_dense_parallelism(
                paper_dlrm_profile(), Cluster(2, 8, "A100"), 0
            )
        with pytest.raises(ValueError):
            latency_cdf([])


class TestQuantization:
    def test_quantized_dmt_still_wins(self):
        analysis = quantization_discussion()
        assert analysis.dmt_speedup > 1.0

    def test_precision_sweep_monotone(self):
        sweep = precision_sweep(paper_dlrm_profile(), Cluster(8, 8, "A100"))
        assert sweep["fp8"] < sweep["fp16"] < sweep["fp32"]

    def test_unknown_precision_rejected(self):
        with pytest.raises(ValueError):
            quantization_discussion(baseline_precision="fp4")
