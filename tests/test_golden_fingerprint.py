"""Golden end-to-end numeric fingerprint.

One canonical seeded quickstart-sized training run, pinned.  Any
refactor that silently changes numerics — a reordered reduction, a
different accumulator, an off-by-one in the shuffle — drifts past the
tolerance and fails tier-1 immediately instead of going unnoticed.

Two layers of protection:

- the run's loss history + eval AUC are compared against the
  checked-in ``GOLDEN`` values with a 1e-9 absolute tolerance —
  strict enough to catch any real numeric change (real changes move
  losses by orders of magnitude more), loose enough to survive
  BLAS-kernel summation differences across platforms without hash
  flakes on rounding boundaries;
- ``GOLDEN_SHA256`` hashes the golden constants themselves, so the
  reference cannot be nudged without visibly updating the hash in the
  same commit.

If you changed training numerics *intentionally*, regenerate
``GOLDEN`` (print ``trainer.loss_history`` + AUC at 12 decimals) and
``GOLDEN_SHA256`` together, and say why in the commit message.
"""

import hashlib

import numpy as np

from repro.data import SyntheticCriteoConfig, SyntheticCriteoDataset
from repro.models import DLRM, tiny_table_configs
from repro.models.configs import DenseArch
from repro.training import TrainConfig, Trainer

#: 28 batch losses (2 epochs x 14 batches) followed by the eval AUC.
GOLDEN = [
    0.833487765605, 0.816192011442, 0.836835499778,
    0.795245771871, 0.764402675781, 0.791043800947,
    0.742818192512, 0.760873794374, 0.728420681596,
    0.740130415685, 0.730276213825, 0.732686567642,
    0.723492324657, 0.731058475509, 0.696444351395,
    0.687265607994, 0.672676812477, 0.662603426091,
    0.686103885826, 0.658400381475, 0.670174889076,
    0.664023520884, 0.659491878401, 0.640669474800,
    0.655251458760, 0.668424023004, 0.636917609443,
    0.650226857573, 0.642532534600,
]
GOLDEN_SHA256 = (
    "ddae2cd2ec91e3feb8f298b5d16c047f27c645acdd0dd3a6b3dd0d432a37ceba"
)
TOLERANCE = 1e-9


def _canonical_run(sparse_grad_mode: str = "rowwise"):
    cfg = SyntheticCriteoConfig(num_dense=4, num_sparse=8, cardinality=32)
    dense, ids, labels = SyntheticCriteoDataset(cfg, seed=0).sample(
        1200, seed=1
    )
    model = DLRM(
        4,
        tiny_table_configs(8, 32, 8),
        DenseArch(embedding_dim=8, bottom_mlp=(16,), top_mlp=(16,)),
        rng=np.random.default_rng(7),
    )
    trainer = Trainer(
        model,
        TrainConfig(
            batch_size=64, epochs=2, seed=11, sparse_grad_mode=sparse_grad_mode
        ),
    )
    trainer.fit(dense[:900], ids[:900], labels[:900])
    evaluation = trainer.evaluate(dense[900:], ids[900:], labels[900:])
    return list(trainer.loss_history) + [evaluation.auc]


class TestGoldenFingerprint:
    def test_golden_constants_are_untampered(self):
        text = "|".join(f"{x:.12f}" for x in GOLDEN)
        assert (
            hashlib.sha256(text.encode()).hexdigest() == GOLDEN_SHA256
        ), "GOLDEN was edited without updating GOLDEN_SHA256"

    def test_loss_history_matches_golden(self):
        observed = _canonical_run()
        assert len(observed) == len(GOLDEN)
        np.testing.assert_allclose(
            observed, GOLDEN, atol=TOLERANCE, rtol=0
        )

    def test_both_sparse_grad_modes_share_the_fingerprint(self):
        """The rowwise fast path is bit-identical to the dense
        reference, so one golden sequence pins both."""
        observed = _canonical_run(sparse_grad_mode="dense")
        np.testing.assert_allclose(
            observed, GOLDEN, atol=TOLERANCE, rtol=0
        )
