"""Golden end-to-end numeric fingerprint.

One canonical seeded quickstart-sized training run, pinned.  Any
refactor that silently changes numerics — a reordered reduction, a
different accumulator, an off-by-one in the shuffle — drifts past the
tolerance and fails tier-1 immediately instead of going unnoticed.

Two layers of protection:

- the run's loss history + eval AUC are compared against the
  checked-in ``GOLDEN`` values with a 1e-9 absolute tolerance —
  strict enough to catch any real numeric change (real changes move
  losses by orders of magnitude more), loose enough to survive
  BLAS-kernel summation differences across platforms without hash
  flakes on rounding boundaries;
- ``GOLDEN_SHA256`` hashes the golden constants themselves, so the
  reference cannot be nudged without visibly updating the hash in the
  same commit.

If you changed training numerics *intentionally*, regenerate
``GOLDEN`` (print ``trainer.loss_history`` + AUC at 12 decimals) and
``GOLDEN_SHA256`` together, and say why in the commit message.
"""

import hashlib

import numpy as np

from repro.data import SyntheticCriteoConfig, SyntheticCriteoDataset
from repro.models import DLRM, tiny_table_configs
from repro.models.configs import DenseArch
from repro.training import TrainConfig, Trainer

#: 28 batch losses (2 epochs x 14 batches) followed by the eval AUC.
GOLDEN = [
    0.814859748944, 0.832260649527, 0.768093025204,
    0.836067463801, 0.802062148867, 0.797611545500,
    0.762212805524, 0.745220041930, 0.712145595976,
    0.737658170452, 0.748025190551, 0.732480671249,
    0.718049906196, 0.713345265056, 0.690943078952,
    0.684214989006, 0.679998857409, 0.668332431935,
    0.694826258555, 0.665996379005, 0.671586238640,
    0.662489701966, 0.651018522011, 0.652047388983,
    0.639025324997, 0.647371863074, 0.641454392628,
    0.643406731511, 0.644959719066,
]
GOLDEN_SHA256 = (
    "1ca201aa3006f04c3637e2c34f487b6a299f6a6718b76a0406085567df5253d5"
)
TOLERANCE = 1e-9


def _canonical_run(sparse_grad_mode: str = "rowwise"):
    cfg = SyntheticCriteoConfig(num_dense=4, num_sparse=8, cardinality=32)
    dense, ids, labels = SyntheticCriteoDataset(cfg, seed=0).sample(
        1200, seed=1
    )
    model = DLRM(
        4,
        tiny_table_configs(8, 32, 8),
        DenseArch(embedding_dim=8, bottom_mlp=(16,), top_mlp=(16,)),
        rng=np.random.default_rng(7),
    )
    trainer = Trainer(
        model,
        TrainConfig(
            batch_size=64, epochs=2, seed=11, sparse_grad_mode=sparse_grad_mode
        ),
    )
    trainer.fit(dense[:900], ids[:900], labels[:900])
    evaluation = trainer.evaluate(dense[900:], ids[900:], labels[900:])
    return list(trainer.loss_history) + [evaluation.auc]


class TestGoldenFingerprint:
    def test_golden_constants_are_untampered(self):
        text = "|".join(f"{x:.12f}" for x in GOLDEN)
        assert (
            hashlib.sha256(text.encode()).hexdigest() == GOLDEN_SHA256
        ), "GOLDEN was edited without updating GOLDEN_SHA256"

    def test_loss_history_matches_golden(self):
        observed = _canonical_run()
        assert len(observed) == len(GOLDEN)
        np.testing.assert_allclose(
            observed, GOLDEN, atol=TOLERANCE, rtol=0
        )

    def test_both_sparse_grad_modes_share_the_fingerprint(self):
        """The rowwise fast path is bit-identical to the dense
        reference, so one golden sequence pins both."""
        observed = _canonical_run(sparse_grad_mode="dense")
        np.testing.assert_allclose(
            observed, GOLDEN, atol=TOLERANCE, rtol=0
        )
