"""Tests for the tiered storage hierarchy (chain, engine, pricing)."""

import numpy as np
import pytest

from repro.hardware import Cluster, memory_tiers
from repro.serving import (
    CacheChain,
    InferenceService,
    LRUEmbeddingCache,
    MicroBatcher,
    Placement,
    ReferenceLRUCache,
    RequestStream,
    ServingFleet,
    ServingModel,
    ServingTier,
    TieredPlacementEngine,
    TieredStorage,
    WorkloadConfig,
    build_storage,
    dollars_per_1k_requests,
    make_tiered_fleet,
    make_tiered_service,
    storage_dollars,
)
from repro.sim import SimCluster


def tiny_model(**overrides) -> ServingModel:
    kwargs = dict(
        name="tiny", num_lookups=4, embedding_dim=16, dense_mflops=1.0
    )
    kwargs.update(overrides)
    return ServingModel(**kwargs)


def trace(num_requests=1500, key_space=900, skew=1.1, seed=7):
    return RequestStream(
        WorkloadConfig(
            qps=30_000.0,
            num_requests=num_requests,
            num_lookups=6,
            key_space=key_space,
            skew=skew,
            seed=seed,
        )
    ).generate()


# ----------------------------------------------------------------------
class TestCacheChain:
    def test_requires_a_level(self):
        with pytest.raises(ValueError, match="at least one level"):
            CacheChain([])

    def test_single_level_matches_bare_cache(self):
        """A one-level chain is accounting-identical to its cache."""
        chain, bare = CacheChain([8]), LRUEmbeddingCache(8)
        rng = np.random.default_rng(0)
        for _ in range(30):
            keys = rng.integers(0, 20, size=int(rng.integers(0, 10)))
            got, want = chain.probe(keys), bare.probe(keys)
            assert got[0] == want[0]
            assert np.array_equal(got[1], want[1])
        assert chain.stats == bare.stats
        assert len(chain) == len(bare)

    def test_lower_level_hit_promotes_upward(self):
        """Inclusive chain: a DRAM hit seats the row in HBM too."""
        chain = CacheChain([2, 8])
        chain.probe(np.array([1, 2, 3, 4]))  # all miss; 3,4 end in HBM
        hits, misses = chain.probe(np.array([1]))
        assert hits == 1  # HBM evicted 1, but the DRAM level held it
        assert misses.size == 0
        assert chain.last_level_hits == [0, 1]
        assert 1 in chain.level_contents()[0]  # promoted into level 0

    def test_prefill_fills_top_down_and_dedupes(self):
        chain = CacheChain([2, 3])
        seeded = chain.prefill(np.array([5, 5, 6, 7, 8, 9, 10]))
        assert seeded == 5  # 2 + 3 capacity, duplicate 5 dropped
        top, bottom = chain.level_contents()
        assert set(top) == {5, 6}  # hottest-first into the fast level
        assert set(bottom) == {7, 8, 9}
        assert chain.stats.hits == 0 and chain.stats.misses == 0

    def test_zero_capacity_level_is_a_pass_through(self):
        chain = CacheChain([0, 4])
        hits, misses = chain.probe(np.array([1, 2]))
        assert hits == 0 and misses.size == 2
        hits, _ = chain.probe(np.array([1, 2]))
        assert hits == 2
        assert chain.last_level_hits == [0, 2]

    def test_chain_matches_reference_chain_fuzz(self):
        """Acceptance: the vectorized chain reproduces a chain of
        reference caches bit-for-bit under interleaved prefill / probe
        / eviction pressure, including zero-capacity levels."""
        rng = np.random.default_rng(42)
        for _ in range(40):
            depth = int(rng.integers(1, 4))
            caps = [int(rng.integers(0, 24)) for _ in range(depth)]
            fast = CacheChain(caps)
            ref = CacheChain(caps, cache_factory=ReferenceLRUCache)
            for _ in range(30):
                keys = rng.integers(0, 40, size=int(rng.integers(0, 16)))
                if rng.integers(0, 4) == 0:
                    assert fast.prefill(keys) == ref.prefill(keys)
                else:
                    got, want = fast.probe(keys), ref.probe(keys)
                    assert got[0] == want[0]
                    assert np.array_equal(got[1], want[1])
                    assert fast.last_level_hits == ref.last_level_hits
                assert len(fast) == len(ref)
                assert fast.stats == ref.stats
                for a, b in zip(fast.level_contents(), ref.level_contents()):
                    assert np.array_equal(a, b)


# ----------------------------------------------------------------------
class TestTieredStorage:
    def test_level0_must_be_hbm(self):
        tiers = memory_tiers("A100")
        with pytest.raises(ValueError, match="level 0 must be"):
            TieredStorage(
                levels=(ServingTier(tiers["dram"], 16),),
                backing=tiers["remote"],
            )

    def test_levels_follow_tier_order(self):
        tiers = memory_tiers("A100")
        with pytest.raises(ValueError, match="tier order"):
            TieredStorage(
                levels=(
                    ServingTier(tiers["hbm"], 4),
                    ServingTier(tiers["ssd"], 64),
                    ServingTier(tiers["dram"], 16),
                ),
                backing=tiers["remote"],
            )

    def test_remote_cannot_be_a_chain_level(self):
        tiers = memory_tiers("A100")
        with pytest.raises(ValueError, match="local tier"):
            TieredStorage(
                levels=(
                    ServingTier(tiers["hbm"], 4),
                    ServingTier(tiers["remote"], 64),
                ),
                backing=tiers["hbm"],
            )

    def test_backing_must_be_hbm_or_remote(self):
        tiers = memory_tiers("A100")
        with pytest.raises(ValueError, match="backing"):
            TieredStorage(
                levels=(ServingTier(tiers["hbm"], 4),),
                backing=tiers["ssd"],
            )

    def test_build_storage_lengths_must_match(self):
        with pytest.raises(ValueError, match="equal length"):
            build_storage("A100", 16, levels=("dram",), cache_rows=())

    def test_build_storage_resolves_presets(self):
        storage = build_storage(
            "A100", 16, levels=("dram", "ssd"), cache_rows=(64, 256)
        )
        assert [t.spec.name for t in storage.levels] == [
            "hbm", "dram", "ssd",
        ]
        assert storage.capacity_rows == 16 + 64 + 256
        assert storage.backing.name == "remote"


# ----------------------------------------------------------------------
class TestBitIdenticalPreset:
    """The tentpole acceptance: the classic single-tier paths are
    reproducible bit-for-bit as degenerate presets of the tiered
    engine."""

    @pytest.mark.parametrize("strategy", ["colocated", "disaggregated"])
    def test_service_reports_identical(self, strategy):
        reqs = trace()
        reports = {}
        for tiered in (False, True):
            sim = SimCluster(Cluster(4, 2, "A100"))
            placement = Placement(strategy, emb_hosts=1)
            batcher = MicroBatcher(16, 0.001)
            if tiered:
                storage = build_storage("A100", 256, backing="hbm")
                svc = make_tiered_service(
                    sim, tiny_model(), placement, batcher, storage
                )
            else:
                svc = InferenceService(
                    sim,
                    tiny_model(),
                    placement,
                    batcher,
                    LRUEmbeddingCache(256),
                )
            reports[tiered] = svc.serve(reqs).to_dict()
        assert reports[False] == reports[True]

    def test_fleet_reports_identical(self):
        reqs = trace()
        reports = {}
        for tiered in (False, True):
            sim = SimCluster(Cluster(4, 2, "A100"))
            placement = Placement("disaggregated", emb_hosts=1)
            batcher = MicroBatcher(16, 0.001)
            if tiered:
                storage = build_storage("A100", 256, backing="hbm")
                fleet = make_tiered_fleet(
                    sim, tiny_model(), placement, batcher, storage,
                    router="p2c", num_replicas=3,
                )
            else:
                fleet = ServingFleet(
                    sim,
                    tiny_model(),
                    placement,
                    batcher,
                    router="p2c",
                    num_replicas=3,
                    cache_rows=256,
                )
            reports[tiered] = fleet.serve(reqs).to_dict()
        assert reports[False] == reports[True]


# ----------------------------------------------------------------------
class TestTieredPricing:
    def _serve(self, storage):
        sim = SimCluster(Cluster(4, 2, "A100"))
        svc = make_tiered_service(
            sim,
            tiny_model(),
            Placement("disaggregated", emb_hosts=1),
            MicroBatcher(16, 0.001),
            storage,
        )
        return svc.serve(trace())

    def test_dram_level_raises_hit_rate(self):
        base = self._serve(build_storage("A100", 128, backing="hbm"))
        deep = self._serve(
            build_storage(
                "A100", 128, levels=("dram",), cache_rows=(512,),
                backing="hbm",
            )
        )
        assert deep.cache_hit_rate > base.cache_hit_rate

    def test_remote_backing_costs_latency(self):
        """Same chain, remote vs HBM backing: the PS hop shows up in
        the tail."""
        hbm = self._serve(build_storage("A100", 128, backing="hbm"))
        remote = self._serve(build_storage("A100", 128, backing="remote"))
        assert remote.latency_ms["p99"] > hbm.latency_ms["p99"]

    def test_chain_extra_seconds_prices_below_hbm_hits(self):
        storage = build_storage(
            "A100", 2, levels=("dram",), cache_rows=(64,), backing="hbm"
        )
        sim = SimCluster(Cluster(4, 2, "A100"))
        model = tiny_model()
        engine = TieredPlacementEngine(
            sim, model, Placement("colocated"), storage
        )
        chain = storage.make_chain()
        chain.probe(np.arange(8))  # cold: all miss
        assert engine.chain_extra_seconds(chain) == 0.0
        chain.probe(np.arange(8))  # HBM holds 2, DRAM serves the rest
        hits = chain.last_level_hits[1]
        assert hits > 0
        dram = storage.levels[1].spec
        expected = dram.latency_s + (
            2.0 * hits * model.row_bytes / dram.bytes_per_s
        )
        assert engine.chain_extra_seconds(chain) == pytest.approx(expected)

    def test_plain_cache_prices_no_chain_extra(self):
        storage = build_storage("A100", 8, backing="hbm")
        engine = TieredPlacementEngine(
            SimCluster(Cluster(4, 2, "A100")),
            tiny_model(),
            Placement("colocated"),
            storage,
        )
        assert engine.chain_extra_seconds(LRUEmbeddingCache(8)) == 0.0


# ----------------------------------------------------------------------
class TestDollars:
    def test_storage_dollars_prices_chain_and_backing(self):
        storage = build_storage(
            "A100", 1000, levels=("dram",), cache_rows=(2000,),
            backing="remote",
        )
        tiers = memory_tiers("A100")
        row_bytes = 512
        got = storage_dollars(storage, row_bytes, backing_rows=10_000,
                              num_replicas=3)
        chain = (
            1000 * row_bytes / 1e9 * tiers["hbm"].dollars_per_gb
            + 2000 * row_bytes / 1e9 * tiers["dram"].dollars_per_gb
        )
        back = 10_000 * row_bytes / 1e9 * tiers["remote"].dollars_per_gb
        assert got == pytest.approx(3 * chain + back)

    def test_hbm_backing_costs_more_than_remote(self):
        """The experiment's premise: backing the full table in HBM is
        the expensive arm."""
        row_bytes, rows = 512, 1_000_000
        hbm = storage_dollars(
            build_storage("A100", 1000, backing="hbm"), row_bytes, rows
        )
        remote = storage_dollars(
            build_storage("A100", 1000, backing="remote"), row_bytes, rows
        )
        assert hbm > 2 * remote

    def test_dollars_per_1k_requests(self):
        assert dollars_per_1k_requests(
            100.0, 1000.0, amortization_s=1.0
        ) == pytest.approx(100.0)

    def test_zero_throughput_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            dollars_per_1k_requests(1.0, 0.0)
