"""Gap-fill tests: introspection, tracing, and edge paths not covered
by the feature-oriented suites."""

import numpy as np
import pytest

from repro.hardware import Cluster
from repro.models import DLRM, tiny_table_configs
from repro.models.configs import tiny_dlrm_arch
from repro.models.xlrm import XLRMConfig, xlrm_paper_config
from repro.nn import MLP, Linear, Sequential
from repro.nn.module import Module, Parameter
from repro.sim import Phase, Timeline


class TestModuleIntrospection:
    def test_modules_walks_tree(self):
        mlp = MLP([4, 3, 2])
        kinds = [type(m).__name__ for m in mlp.modules()]
        assert kinds.count("Linear") == 2
        assert "MLP" in kinds and "Sequential" in kinds

    def test_named_parameters_paths_are_unique_and_stable(self):
        model = DLRM(
            4,
            tiny_table_configs(3, 8, 8),
            tiny_dlrm_arch(8),
            rng=np.random.default_rng(0),
        )
        names1 = [n for n, _ in model.named_parameters()]
        names2 = [n for n, _ in model.named_parameters()]
        assert names1 == names2
        assert len(names1) == len(set(names1))
        assert any(n.startswith("embeddings.") for n in names1)
        assert any(n.startswith("top.") for n in names1)

    def test_parameters_in_lists_discovered(self):
        class Holder(Module):
            def __init__(self):
                self.items = [Parameter(np.zeros(2)), Linear(2, 2)]

        h = Holder()
        assert h.num_parameters() == 2 + (4 + 2)

    def test_load_state_dict_shape_mismatch(self):
        a = Linear(2, 3)
        state = a.state_dict()
        state["weight"] = np.zeros((3, 2))
        with pytest.raises(ValueError, match="shape"):
            a.load_state_dict(state)

    def test_zero_grad_clears(self):
        layer = Linear(2, 2)
        layer(np.ones((1, 2)))
        layer.backward(np.ones((1, 2)))
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_base_module_abstract_methods(self):
        m = Module()
        with pytest.raises(NotImplementedError):
            m.forward()
        with pytest.raises(NotImplementedError):
            m.backward(None)


class TestTimelineExtras:
    def test_bytes_by_phase(self):
        tl = Timeline()
        tl.add(Phase.EMBEDDING_COMM, "a", 0.1, nbytes=100)
        tl.add(Phase.EMBEDDING_COMM, "b", 0.1, nbytes=50)
        tl.add(Phase.DENSE_SYNC, "c", 0.1, nbytes=7)
        by_phase = tl.bytes_by_phase()
        assert by_phase[Phase.EMBEDDING_COMM] == 150
        assert by_phase[Phase.DENSE_SYNC] == 7

    def test_extend_and_clear(self):
        a, b = Timeline(), Timeline()
        a.add(Phase.COMPUTE, "x", 0.1)
        b.add(Phase.COMPUTE, "y", 0.2)
        a.extend(b)
        assert len(a) == 2
        a.clear()
        assert len(a) == 0 and a.total() == 0.0


class TestXLRMConfig:
    def test_paper_config_parameter_count(self):
        cfg = xlrm_paper_config()
        assert cfg.total_parameters == pytest.approx(2e12, rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            XLRMConfig(0, 256, 1, 1.0, 1, 1)
        with pytest.raises(ValueError):
            XLRMConfig(1, 256, 1, -1.0, 1, 1)


class TestSequentialIndexing:
    def test_getitem_and_len(self):
        seq = Sequential([Linear(2, 3), Linear(3, 4)])
        assert len(seq) == 2
        assert seq[1].out_features == 4


class TestClusterRepr:
    def test_reprs_do_not_crash(self):
        c = Cluster(2, 2)
        assert "Cluster" in repr(c)
        assert "GPU" in repr(c.gpu(0))
