"""Multi-task towers (CTR+CVR) and the paired A/B harness (PR 10).

Covers the tentpole seams end to end — correlated task labels from
:meth:`SyntheticCriteoDataset.sample_tasks`, the
:class:`~repro.nn.loss.MultiLoss` weighted sum (gradient-checked
against finite differences and bit-identical to ``BCEWithLogitsLoss``
in the one-task degenerate preset), :class:`~repro.models.multitask.
MultiTaskModel` composition and state round trips, per-task trainer
bookkeeping through checkpoint/resume, :meth:`Session.ab` paired
deltas with Student-t CIs — plus the metric satellites (``auc``'s
typed single-class skip, ``calibration``'s symmetric degenerate
rejection) and the :class:`~repro.online.OnlineDriver`'s per-task
canary gate.
"""

import json
import math

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.analysis import SpecAnalysisError
from repro.api import (
    ABSpec,
    ClusterSpec,
    DataSpec,
    ModelSpec,
    RunSpec,
    Session,
    TrainSpec,
)
from repro.checkpoint import load_training_checkpoint, save_training_checkpoint
from repro.data import random_batch
from repro.data.criteo import SyntheticCriteoConfig, SyntheticCriteoDataset
from repro.models import DLRM
from repro.models.configs import DenseArch, tiny_table_configs
from repro.models.multitask import MultiTaskHead, MultiTaskModel
from repro.nn.loss import BCEWithLogitsLoss, MultiLoss
from repro.online import OnlineDriver
from repro.training import TrainConfig, Trainer
from repro.training.loop import EvalResult, MultiTaskEvalResult
from repro.training.metrics import auc, calibration, normalized_entropy

NUM_DENSE = 4
NUM_TABLES = 4
CARD = 64
DIM = 8


def base_model(init_seed=0, rng=None):
    """The tiny DLRM geometry shared by every test in this file."""
    return DLRM(
        NUM_DENSE,
        tiny_table_configs(NUM_TABLES, CARD, DIM),
        DenseArch(embedding_dim=DIM, bottom_mlp=(16,), top_mlp=(16,)),
        rng=rng if rng is not None else np.random.default_rng(init_seed),
    )


def mt_model(head="dbmtl", init_seed=0, **kwargs):
    """A two-task (ctr, cvr) tower stack over the tiny DLRM."""
    rng = np.random.default_rng(init_seed)
    return MultiTaskModel(
        base_model(rng=rng),
        tasks=("ctr", "cvr"),
        head=head,
        head_mlp=(8,),
        rng=rng,
        **kwargs,
    )


def mt_batch(i, n=128):
    """One deterministic (dense, ids, (n, 2) labels) stream window.

    The cvr column is gated on the ctr column, like the dataset's.
    """
    dense, ids, ctr = random_batch(
        n, NUM_DENSE, NUM_TABLES, CARD, rng=np.random.default_rng(100 + i)
    )
    conv = (
        np.random.default_rng(500 + i).binomial(1, 0.5, size=n).astype(np.float64)
    )
    return dense, ids, np.stack([ctr, conv * ctr], axis=1)


# ----------------------------------------------------------------------
class TestSampleTasksOracle:
    """sample_tasks must replay sample() bit-exactly through CTR."""

    @pytest.fixture(scope="class")
    def dataset(self):
        return SyntheticCriteoDataset(
            SyntheticCriteoConfig(num_sparse=8, num_blocks=2, cardinality=32),
            seed=0,
        )

    def test_features_and_ctr_bit_equal_to_single_task(self, dataset):
        dense1, ids1, labels1 = dataset.sample(256, seed=5)
        dense2, ids2, labels2 = dataset.sample_tasks(256, seed=5)
        assert np.array_equal(dense1, dense2)
        assert np.array_equal(ids1, ids2)
        assert labels2.shape == (256, 2)
        assert np.array_equal(labels1, labels2[:, 0])

    def test_ctr_only_matches_too(self, dataset):
        _, _, labels1 = dataset.sample(128, seed=9)
        _, _, labels2 = dataset.sample_tasks(128, tasks=("ctr",), seed=9)
        assert labels2.shape == (128, 1)
        assert np.array_equal(labels1, labels2[:, 0])

    def test_cvr_is_click_gated(self, dataset):
        _, _, labels = dataset.sample_tasks(2048, seed=3)
        ctr, cvr = labels[:, 0], labels[:, 1]
        assert set(np.unique(cvr)) <= {0.0, 1.0}
        # No conversion without a click, and some clicks do convert.
        assert np.all(cvr <= ctr)
        assert 0.0 < cvr[ctr > 0.5].mean() < 1.0

    def test_deterministic_per_seed(self, dataset):
        a = dataset.sample_tasks(64, seed=11)
        b = dataset.sample_tasks(64, seed=11)
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_validation(self, dataset):
        with pytest.raises(ValueError, match="unknown tasks"):
            dataset.sample_tasks(16, tasks=("ctr", "installs"))
        with pytest.raises(ValueError, match="duplicate"):
            dataset.sample_tasks(16, tasks=("ctr", "ctr"))
        with pytest.raises(ValueError, match="include 'ctr'"):
            dataset.sample_tasks(16, tasks=("cvr",))
        with pytest.raises(ValueError, match="positive"):
            dataset.sample_tasks(0)


# ----------------------------------------------------------------------
class TestMultiLoss:
    def test_one_task_bit_identical_to_bce(self):
        rng = np.random.default_rng(0)
        logits = rng.standard_normal(64)
        targets = rng.binomial(1, 0.4, size=64).astype(np.float64)
        multi, bce = MultiLoss(1), BCEWithLogitsLoss()
        assert multi(logits, targets) == bce(logits, targets)
        grad = multi.backward()
        assert grad.shape == (64, 1)
        assert np.array_equal(grad[:, 0], bce.backward())

    def test_weights_scale_loss_and_grad(self):
        rng = np.random.default_rng(1)
        logits = rng.standard_normal((32, 2))
        targets = rng.binomial(1, 0.5, size=(32, 2)).astype(np.float64)
        plain = MultiLoss(2)
        weighted = MultiLoss(2, weights=(1.0, 2.0))
        total_plain = plain(logits, targets)
        total_weighted = weighted(logits, targets)
        assert total_weighted == pytest.approx(
            total_plain + plain.task_losses[1]
        )
        g_plain, g_weighted = plain.backward(), weighted.backward()
        assert np.array_equal(g_weighted[:, 0], g_plain[:, 0])
        assert np.allclose(g_weighted[:, 1], 2.0 * g_plain[:, 1])

    def test_gate_restricts_loss_and_grad_to_gated_rows(self):
        rng = np.random.default_rng(2)
        logits = rng.standard_normal((64, 2))
        targets = rng.binomial(1, 0.5, size=(64, 2)).astype(np.float64)
        targets[:, 1] *= targets[:, 0]  # cvr only on clicks
        gated = MultiLoss(2, gates={1: 0})
        gated(logits, targets)
        clicked = targets[:, 0] > 0.5
        # The gated task's loss is the BCE of the clicked subset only.
        ref = BCEWithLogitsLoss()
        assert gated.task_losses[1] == ref(
            logits[clicked, 1], targets[clicked, 1]
        )
        grad = gated.backward()
        assert np.all(grad[~clicked, 1] == 0.0)
        assert np.any(grad[clicked, 1] != 0.0)

    def test_empty_gate_window_is_silent(self):
        logits = np.zeros((8, 2))
        targets = np.zeros((8, 2))  # no clicks at all
        loss = MultiLoss(2, gates={1: 0})
        total = loss(logits, targets)
        assert math.isnan(loss.task_losses[1])
        assert total == loss.weights[0] * loss.task_losses[0]
        assert np.all(loss.backward()[:, 1] == 0.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            MultiLoss(0)
        with pytest.raises(ValueError, match="weights"):
            MultiLoss(2, weights=(1.0,))
        with pytest.raises(ValueError, match="finite"):
            MultiLoss(2, weights=(1.0, float("inf")))
        with pytest.raises(ValueError, match="out of range"):
            MultiLoss(2, gates={1: 5})
        with pytest.raises(ValueError, match="gate itself"):
            MultiLoss(2, gates={1: 1})
        with pytest.raises(ValueError, match="names"):
            MultiLoss(2, names=("ctr",))
        with pytest.raises(RuntimeError, match="before forward"):
            MultiLoss(2).backward()

    @pytest.mark.parametrize("head", ["shared_bottom", "dbmtl"])
    def test_finite_differences_through_the_model(self, head):
        """d(weighted loss)/d(theta) matches central differences for
        every kind of dense parameter the multi-task stack adds."""
        model = mt_model(head, task_weights=(1.0, 0.7))
        dense, ids, labels = mt_batch(0, n=32)
        loss_fn = MultiLoss(
            2, weights=model.task_weights, gates=model.task_gates
        )

        def loss_value():
            return loss_fn(model(dense, ids), labels)

        model.zero_grad()
        loss_value()
        model.backward(loss_fn.backward())

        checked = 0
        eps = 1e-6
        for name, p in model.named_parameters():
            if "embeddings" in name:
                continue  # sparse plane: covered by the equivalence suite
            flat = p.data.reshape(-1)
            grad = (
                np.zeros_like(flat)
                if p.grad is None
                else p.grad.reshape(-1)
            )
            for idx in (0, flat.size // 2):
                orig = flat[idx]
                flat[idx] = orig + eps
                up = loss_value()
                flat[idx] = orig - eps
                down = loss_value()
                flat[idx] = orig
                fd = (up - down) / (2 * eps)
                assert grad[idx] == pytest.approx(fd, rel=1e-4, abs=1e-7), name
                checked += 1
        assert checked >= 10
        if head == "dbmtl":
            assert any("link" in n for n, _ in model.named_parameters())


# ----------------------------------------------------------------------
class TestMultiTaskModel:
    def test_single_task_wrap_is_bit_identical_to_base(self):
        plain = base_model(0)
        wrapped = MultiTaskModel(base_model(0), tasks=("ctr",))
        dense, ids, _ = random_batch(
            64, NUM_DENSE, NUM_TABLES, CARD, rng=np.random.default_rng(0)
        )
        out = wrapped(dense, ids)
        assert out.shape == (64, 1)
        assert np.array_equal(out[:, 0], plain(dense, ids).reshape(-1))
        assert wrapped.flops_per_sample() == plain.flops_per_sample()
        assert wrapped.head is None

    def test_dbmtl_is_shared_bottom_plus_linked_primary(self):
        # Same init rng => identical towers; the unit-initialized link
        # makes the dbmtl aux logit exactly tower + primary.
        shared = mt_model("shared_bottom", init_seed=3)
        linked = mt_model("dbmtl", init_seed=3)
        dense, ids, _ = mt_batch(1, n=32)
        out_s, out_l = shared(dense, ids), linked(dense, ids)
        assert np.array_equal(out_s[:, 0], out_l[:, 0])
        assert np.array_equal(out_l[:, 1], out_s[:, 1] + 1.0 * out_l[:, 0])

    def test_state_dict_round_trip_includes_head_and_links(self):
        src = mt_model("dbmtl", init_seed=0)
        dst = mt_model("dbmtl", init_seed=7)
        names = [n for n, _ in src.named_parameters()]
        assert any(n.startswith("head.towers.") for n in names)
        assert any(n.startswith("head.links.") for n in names)
        dst.load_state_dict(src.state_dict())
        for (n1, p1), (n2, p2) in zip(
            src.named_parameters(), dst.named_parameters()
        ):
            assert n1 == n2
            assert np.array_equal(p1.data, p2.data)

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            MultiTaskModel(base_model(), tasks=())
        with pytest.raises(ValueError, match="duplicate"):
            MultiTaskModel(base_model(), tasks=("ctr", "ctr"))
        with pytest.raises(ValueError, match="unknown tasks"):
            MultiTaskModel(base_model(), tasks=("ctr", "installs"))
        with pytest.raises(ValueError, match="weights"):
            MultiTaskModel(
                base_model(), tasks=("ctr", "cvr"), task_weights=(1.0,)
            )
        with pytest.raises(TypeError, match="seam"):
            MultiTaskModel(object(), tasks=("ctr",))
        with pytest.raises(ValueError, match="head mode"):
            MultiTaskHead(8, ("cvr",), mode="moe")

    def test_cvr_gates_on_ctr_column(self):
        model = mt_model()
        assert model.task_gates == {1: 0}
        # Without ctr in the task list there is nothing to gate on —
        # the spec layer rejects that combination before it gets here.
        solo = MultiTaskModel(base_model(), tasks=("ctr",))
        assert solo.task_gates == {}


# ----------------------------------------------------------------------
class TestTrainerMultiTask:
    @pytest.mark.parametrize("mode", ["rowwise", "dense"])
    def test_one_task_training_bit_identical_to_bce(self, mode):
        """The whole training loop — not just the loss — is bit-equal
        between a bare DLRM (BCEWithLogitsLoss) and its one-task
        MultiTaskModel wrap (MultiLoss), under both gradient paths."""
        config = TrainConfig(
            batch_size=32, epochs=2, sparse_grad_mode=mode, seed=0
        )
        plain = base_model(0)
        t_plain = Trainer(plain, config)
        wrapped = MultiTaskModel(base_model(0), tasks=("ctr",))
        t_wrapped = Trainer(wrapped, config)
        assert isinstance(t_plain.loss_module, BCEWithLogitsLoss)
        assert isinstance(t_wrapped.loss_module, MultiLoss)
        dense, ids, labels = random_batch(
            256, NUM_DENSE, NUM_TABLES, CARD, rng=np.random.default_rng(0)
        )
        losses_plain = t_plain.fit(dense, ids, labels)
        losses_wrapped = t_wrapped.fit(dense, ids, labels[:, None])
        assert losses_plain == losses_wrapped
        for (n1, p1), (n2, p2) in zip(
            plain.named_parameters(), wrapped.base.named_parameters()
        ):
            assert n1 == n2
            assert np.array_equal(p1.data, p2.data), n1

    def test_per_task_loss_history(self):
        model = mt_model()
        trainer = Trainer(model, TrainConfig(batch_size=32, epochs=1))
        trainer.train_window(*mt_batch(0))
        assert set(trainer.task_loss_history) == {"ctr", "cvr"}
        steps = trainer.global_step
        assert steps == 4  # 128 samples / batch 32
        for history in trainer.task_loss_history.values():
            assert len(history) == steps
        assert all(np.isfinite(trainer.task_loss_history["ctr"]))

    @pytest.mark.parametrize("mode", ["rowwise", "dense"])
    def test_checkpoint_resume_bit_identical(self, mode, tmp_path):
        config = TrainConfig(
            batch_size=32, epochs=1, sparse_grad_mode=mode, seed=0
        )
        model = mt_model("dbmtl")
        trainer = Trainer(model, config)
        trainer.train_window(*mt_batch(0))
        path = save_training_checkpoint(str(tmp_path / "ck"), model, trainer)

        m2 = mt_model("dbmtl", init_seed=7)
        t2 = Trainer(m2, config)
        load_training_checkpoint(path, m2, t2)
        assert t2.task_loss_history == trainer.task_loss_history
        w1 = mt_batch(1)
        assert trainer.train_window(*w1) == t2.train_window(*w1)
        for (n1, p1), (n2, p2) in zip(
            model.named_parameters(), m2.named_parameters()
        ):
            assert n1 == n2
            assert np.array_equal(p1.data, p2.data), n1
        assert t2.task_loss_history == trainer.task_loss_history

    def test_legacy_state_without_task_history_loads(self):
        model = mt_model()
        trainer = Trainer(model, TrainConfig(batch_size=32, epochs=1))
        trainer.train_window(*mt_batch(0))
        state = trainer.state_dict()
        state.pop("task_loss_history")  # pre-multi-task snapshot shape
        t2 = Trainer(mt_model(init_seed=7), TrainConfig(batch_size=32, epochs=1))
        t2.load_state_dict(state)
        assert t2.task_loss_history == {"ctr": [], "cvr": []}

    def test_evaluate_returns_per_task_metrics(self):
        model = mt_model()
        trainer = Trainer(model, TrainConfig(batch_size=32, epochs=1))
        dense, ids, labels = mt_batch(2, n=256)
        result = trainer.evaluate(dense, ids, labels)
        assert isinstance(result, MultiTaskEvalResult)
        assert set(result.by_task) == {"ctr", "cvr"}
        # Headline metrics delegate to the primary task.
        assert result.auc == result.by_task["ctr"].auc
        assert result.num_samples == 256
        # The gated task is scored on the clicked subset only.
        clicks = int((labels[:, 0] > 0.5).sum())
        assert result.by_task["cvr"].num_samples == clicks
        with pytest.raises(ValueError, match="labels"):
            trainer.evaluate(dense, ids, labels[:, :1])


# ----------------------------------------------------------------------
class TestMetricSatellites:
    """auc's typed single-class skip; calibration's symmetric guard."""

    def test_auc_single_class_policies(self):
        ones = np.ones(8)
        scores = np.linspace(0, 1, 8)
        with pytest.raises(ValueError, match="both classes"):
            auc(ones, scores)
        assert math.isnan(auc(ones, scores, single_class="nan"))
        assert math.isnan(auc(np.zeros(8), scores, single_class="nan"))
        with pytest.raises(ValueError, match="single_class"):
            auc(ones, scores, single_class="ignore")
        # A healthy window is unaffected by the policy knob.
        labels = np.array([0, 0, 1, 1])
        healthy = np.array([0.1, 0.4, 0.35, 0.8])
        assert auc(labels, healthy) == auc(labels, healthy, single_class="nan")

    def test_calibration_degenerate_rejection_is_symmetric(self):
        logits = np.linspace(-1, 1, 8)
        for labels in (np.ones(8), np.zeros(8)):
            with pytest.raises(ValueError, match="degenerate"):
                normalized_entropy(labels, logits)
            with pytest.raises(ValueError, match="degenerate"):
                calibration(labels, logits)

    def test_calibration_value(self):
        labels = np.array([0.0, 1.0, 1.0, 0.0])
        logits = np.zeros(4)  # predicts 0.5 everywhere; base rate 0.5
        assert calibration(labels, logits) == pytest.approx(1.0)


# ----------------------------------------------------------------------
def tiny_ab_spec(**overrides):
    """A small two-arm multi-task spec (shared_bottom vs dbmtl)."""
    model = ModelSpec(
        family="dlrm",
        variant="flat",
        embedding_dim=8,
        bottom_mlp=(16,),
        top_mlp=(16,),
        tasks=("ctr", "cvr"),
        head="shared_bottom",
        head_mlp=(8,),
    )
    base = dict(
        name="tiny-ab",
        cluster=ClusterSpec(num_hosts=1, gpus_per_host=2),
        data=DataSpec(
            num_dense=4,
            num_sparse=8,
            cardinality=32,
            num_blocks=2,
            num_samples=1024,
            eval_fraction=0.25,
        ),
        model=model,
        train=TrainSpec(mode="single", batch_size=128, epochs=1),
        ab=ABSpec(
            seeds=(0, 1, 2),
            label_a="shared_bottom",
            label_b="dbmtl",
            model_b=model.replace(head="dbmtl"),
        ),
    )
    base.update(overrides)
    return RunSpec(**base)


class TestSessionAB:
    @pytest.fixture(scope="class")
    def artifact(self):
        return Session(tiny_ab_spec()).ab()

    def test_artifact_shape(self, artifact):
        assert artifact.label_a == "shared_bottom"
        assert artifact.label_b == "dbmtl"
        assert artifact.tasks == ("ctr", "cvr")
        for task in artifact.tasks:
            for metric in ("auc", "log_loss", "normalized_entropy"):
                cell = artifact.delta(task, metric)
                assert len(cell["a_values"]) == 3
                assert len(cell["b_values"]) == 3
                assert cell["deltas"] == [
                    b - a
                    for a, b in zip(cell["a_values"], cell["b_values"])
                ]
        json.dumps(artifact.summary())  # JSON-serializable end to end

    def test_paired_arm_matches_independent_run(self, artifact):
        """Arm A at seed 0 is exactly a plain training run under the
        §5.2 seed protocol — the pairing adds nothing but bookkeeping."""
        spec = tiny_ab_spec()
        arm = spec.replace(
            name="solo",
            model=spec.model.replace(seed=100),
            train=spec.train.replace(seed=0),
            ab=None,
        )
        res = Session(arm).train().eval_result
        cell = artifact.delta("ctr", "auc")
        assert cell["a_values"][0] == float(res.by_task["ctr"].auc)

    def test_ci_matches_scipy(self, artifact):
        cell = artifact.delta("cvr", "auc")
        deltas = np.array(cell["deltas"])
        n = len(deltas)
        tcrit = scipy_stats.t.ppf(0.975, n - 1)
        half = tcrit * deltas.std(ddof=1) / math.sqrt(n)
        assert cell["ci_low"] == pytest.approx(deltas.mean() - half)
        assert cell["ci_high"] == pytest.approx(deltas.mean() + half)
        assert cell["excludes_zero"] == (
            cell["ci_low"] > 0.0 or cell["ci_high"] < 0.0
        )
        assert artifact.significant("cvr", "auc") == cell["excludes_zero"]

    def test_unknown_task_or_metric_is_a_key_error(self, artifact):
        with pytest.raises(KeyError, match="no task"):
            artifact.delta("installs")
        with pytest.raises(KeyError, match="no metric"):
            artifact.delta("ctr", "accuracy")

    def test_identical_arms_rejected_by_analysis(self):
        spec = tiny_ab_spec(ab=ABSpec(seeds=(0, 1)))
        with pytest.raises(SpecAnalysisError) as err:
            Session(spec).ab()
        assert any(
            d.code == "ab-arms-identical" for d in err.value.diagnostics
        )

    def test_identical_arms_are_exactly_zero_unchecked(self):
        """With analysis off, identical arms prove the pairing is
        airtight: every per-seed delta is exactly 0.0 — same data,
        same batch order, same init."""
        spec = tiny_ab_spec(ab=ABSpec(seeds=(0, 1)))
        art = Session(spec, analyze=False).ab()
        for task in art.tasks:
            cell = art.delta(task, "auc")
            assert cell["deltas"] == [0.0, 0.0]
            assert not cell["excludes_zero"]

    def test_run_includes_ab_section(self):
        spec = tiny_ab_spec(
            ab=ABSpec(
                seeds=(0, 1),
                label_a="shared_bottom",
                label_b="dbmtl",
                model_b=tiny_ab_spec().ab.model_b,
            )
        )
        result = Session(spec).run()
        assert result.ab is not None
        assert result.ab["label_b"] == "dbmtl"
        assert "cvr" in result.ab["metrics"]
        assert "ab" in result.to_dict()
        assert "dbmtl" in result.render()


# ----------------------------------------------------------------------
class _ScriptedTrainer(Trainer):
    """Real trainer whose canary evaluations are scripted.

    The driver's gate decisions depend only on the per-task AUCs each
    evaluation reports; scripting them makes regressions deterministic
    instead of hoping a tiny window happens to degrade."""

    def __init__(self, model, config, script):
        super().__init__(model, config)
        self.script = list(script)

    def evaluate(self, *arrays, **kwargs):
        assert kwargs.get("single_class") == "nan"
        by_task = self.script.pop(0)
        return MultiTaskEvalResult(
            by_task={
                name: EvalResult(
                    auc=value,
                    log_loss=0.5,
                    normalized_entropy=1.0,
                    num_samples=32,
                    auc_skipped=math.isnan(value),
                )
                for name, value in by_task.items()
            },
            primary="ctr",
        )


class TestOnlineDriverPerTaskGate:
    """Rollback fires when ANY gated task regresses; NaN canaries are
    typed skips, never crashes or silent deploy blocks."""

    def _run(self, script, tmp_path, n_windows=3):
        model = mt_model()
        trainer = _ScriptedTrainer(
            model, TrainConfig(batch_size=32, epochs=1), script
        )
        driver = OnlineDriver(
            model, trainer, str(tmp_path), canary_threshold=0.05
        )
        windows = [
            (mt_batch(2 * i), mt_batch(2 * i + 1, n=64))
            for i in range(n_windows)
        ]
        return driver.run(windows)

    def test_aux_task_regression_rolls_back(self, tmp_path):
        # Window 1's candidate improves CTR but tanks CVR: the old
        # primary-only gate would have shipped it.
        script = [
            {"ctr": 0.70, "cvr": 0.70},  # window 0 bootstrap
            {"ctr": 0.70, "cvr": 0.70},  # w1 deployed
            {"ctr": 0.70, "cvr": 0.70},  # w1 frozen
            {"ctr": 0.72, "cvr": 0.60},  # w1 candidate: cvr -0.10
            {"ctr": 0.70, "cvr": 0.70},  # w2 deployed (still v1)
            {"ctr": 0.70, "cvr": 0.70},  # w2 frozen
            {"ctr": 0.71, "cvr": 0.71},  # w2 candidate: healthy
        ]
        report = self._run(script, tmp_path)
        assert report.num_rollbacks == 1
        assert report.windows[1]["rolled_back"] is True
        gate = report.rollouts[0]["regression_by_task"]
        assert gate["cvr"] == pytest.approx(0.10)
        assert gate["ctr"] < 0  # the primary actually improved
        assert report.rollouts[0]["canary_skipped_tasks"] == []
        # The healthy window-2 candidate deploys.
        assert report.windows[2]["rolled_out"] is True
        assert report.num_versions == 2

    def test_nan_task_is_a_typed_skip_not_a_block(self, tmp_path):
        # CVR's canary AUC is NaN (single-class gated subset) on the
        # live side: it cannot be gated, the remaining tasks decide.
        script = [
            {"ctr": 0.70, "cvr": float("nan")},
            {"ctr": 0.70, "cvr": float("nan")},  # w1 deployed
            {"ctr": 0.70, "cvr": float("nan")},  # w1 frozen
            {"ctr": 0.69, "cvr": 0.80},          # w1 candidate
            {"ctr": 0.69, "cvr": 0.80},          # w2 deployed
            {"ctr": 0.70, "cvr": float("nan")},  # w2 frozen
            {"ctr": 0.70, "cvr": 0.81},          # w2 candidate
        ]
        report = self._run(script, tmp_path)
        assert report.num_rollbacks == 0
        assert report.windows[0]["canary_skipped_tasks"] == ["cvr"]
        rollout = report.rollouts[0]
        assert rollout["canary_skipped_tasks"] == ["cvr"]
        assert "cvr" not in rollout["regression_by_task"]
        assert rollout["regression_by_task"]["ctr"] == pytest.approx(0.01)
        assert rollout["rolled_back"] is False

    def test_single_class_canary_window_does_not_crash(self, tmp_path):
        """Regression (satellite): auc() raising on a one-class canary
        window used to kill the whole online run mid-stream."""

        def window(i, n=128):
            return random_batch(
                n,
                NUM_DENSE,
                NUM_TABLES,
                CARD,
                rng=np.random.default_rng(100 + i),
            )

        model = base_model(0)
        trainer = Trainer(model, TrainConfig(batch_size=32, epochs=1, seed=0))
        driver = OnlineDriver(
            model, trainer, str(tmp_path), canary_threshold=0.45
        )
        windows = [(window(2 * i), window(2 * i + 1, n=64)) for i in range(3)]
        # Make window 1's eval slice single-class: AUC is undefined.
        dense, ids, labels = windows[1][1]
        windows[1] = (windows[1][0], (dense, ids, np.ones_like(labels)))
        report = driver.run(windows)  # must not raise
        skipped = report.windows[1]
        assert skipped["canary_skipped_tasks"] == ["primary"]
        assert math.isnan(skipped["online_auc"])
        # No gateable evidence of regression: the deploy proceeds.
        assert skipped["rolled_out"] is True
        healthy = report.windows[2]
        assert healthy["canary_skipped_tasks"] == []
        assert not math.isnan(healthy["online_auc"])
