"""Tests for the serving subsystem (workload, batcher, cache, service)."""

import numpy as np
import pytest

from repro.api import ClusterSpec, RunSpec, ServeSpec, Session, SpecError
from repro.hardware import Cluster
from repro.serving import (
    InferenceService,
    LRUEmbeddingCache,
    MicroBatch,
    MicroBatcher,
    Placement,
    ReferenceLRUCache,
    Request,
    RequestStream,
    ServingModel,
    ServingReport,
    WorkloadConfig,
    build_report,
)
from repro.serving.service import ID_WIRE_BYTES
from repro.sim import Phase, SimCluster


def req(i: int, t: float, keys=(0,)) -> Request:
    return Request(req_id=i, arrival_s=t, keys=np.asarray(keys, dtype=np.int64))


def tiny_model(**overrides) -> ServingModel:
    kwargs = dict(
        name="tiny",
        num_lookups=4,
        embedding_dim=16,
        dense_mflops=1.0,
    )
    kwargs.update(overrides)
    return ServingModel(**kwargs)


# ----------------------------------------------------------------------
class TestWorkload:
    def test_poisson_stream_is_deterministic_and_sorted(self):
        cfg = WorkloadConfig(qps=500.0, num_requests=200, seed=11)
        a = RequestStream(cfg).generate()
        b = RequestStream(cfg).generate()
        assert a == b
        arrivals = [r.arrival_s for r in a]
        assert arrivals == sorted(arrivals)
        assert all(r.keys.shape == (cfg.num_lookups,) for r in a)

    def test_mean_rate_approximates_qps(self):
        cfg = WorkloadConfig(qps=1000.0, num_requests=5000, seed=0)
        reqs = RequestStream(cfg).generate()
        span = reqs[-1].arrival_s - reqs[0].arrival_s
        rate = (len(reqs) - 1) / span
        assert rate == pytest.approx(1000.0, rel=0.1)

    def test_skew_concentrates_mass_on_hot_keys(self):
        flat = RequestStream(WorkloadConfig(skew=0.0, key_space=1000))
        hot = RequestStream(WorkloadConfig(skew=1.2, key_space=1000))
        assert hot.hot_fraction(10) > flat.hot_fraction(10)
        assert flat.hot_fraction(100) == pytest.approx(0.1)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            WorkloadConfig(qps=0.0)
        with pytest.raises(ValueError):
            WorkloadConfig(skew=-0.1)
        with pytest.raises(ValueError):
            WorkloadConfig(num_requests=0)

    def test_requests_are_hashable_consistently_with_eq(self):
        a = req(0, 0.5, keys=(1, 2))
        b = req(0, 0.5, keys=(1, 2))
        assert a == b and hash(a) == hash(b)
        assert len({a, b, req(1, 0.5, keys=(1, 2))}) == 2


# ----------------------------------------------------------------------
class TestMicroBatcher:
    def test_flush_on_full(self):
        reqs = [req(i, 0.0001 * i) for i in range(10)]
        batches = MicroBatcher(max_batch_size=4, max_delay_s=10.0).form_batches(reqs)
        assert [b.size for b in batches] == [4, 4, 2]
        # A full batch closes the moment its last request arrives.
        assert batches[0].ready_s == pytest.approx(reqs[3].arrival_s)
        assert batches[1].ready_s == pytest.approx(reqs[7].arrival_s)

    def test_flush_on_deadline(self):
        # Two requests 1 ms apart, then a 100 ms gap: the deadline
        # (5 ms after the batch opened) closes the batch long before
        # the third request arrives.
        reqs = [req(0, 0.000), req(1, 0.001), req(2, 0.100)]
        batches = MicroBatcher(max_batch_size=64, max_delay_s=0.005).form_batches(reqs)
        assert [b.size for b in batches] == [2, 1]
        assert batches[0].ready_s == pytest.approx(0.005)
        assert batches[1].ready_s == pytest.approx(0.105)

    def test_zero_delay_serves_singletons(self):
        reqs = [req(i, 0.01 * i) for i in range(3)]
        batches = MicroBatcher(max_batch_size=8, max_delay_s=0.0).form_batches(reqs)
        assert [b.size for b in batches] == [1, 1, 1]
        assert all(b.ready_s == b.requests[0].arrival_s for b in batches)

    def test_zero_delay_identical_arrivals_stay_singletons(self):
        """Regression: with max_delay_s=0 a request arriving exactly at
        the (already expired) deadline used to join the previous batch,
        so simultaneous arrivals glued into one never-delayed batch."""
        reqs = [req(i, 0.005) for i in range(3)]
        batches = MicroBatcher(max_batch_size=8, max_delay_s=0.0).form_batches(reqs)
        assert [b.size for b in batches] == [1, 1, 1]
        assert all(b.ready_s == 0.005 for b in batches)

    def test_arrival_exactly_on_deadline_starts_next_batch(self):
        """The deadline is exclusive: the batch accepts [t, t+delay)."""
        reqs = [req(0, 0.000), req(1, 0.005), req(2, 0.0099)]
        batches = MicroBatcher(max_batch_size=8, max_delay_s=0.005).form_batches(reqs)
        assert [b.size for b in batches] == [1, 2]
        assert batches[0].ready_s == pytest.approx(0.005)
        assert batches[1].ready_s == pytest.approx(0.010)

    def test_no_request_lost_or_duplicated(self):
        stream = RequestStream(WorkloadConfig(qps=2000.0, num_requests=333, seed=5))
        reqs = stream.generate()
        batches = MicroBatcher(max_batch_size=7, max_delay_s=0.002).form_batches(reqs)
        served = [r.req_id for b in batches for r in b.requests]
        assert sorted(served) == list(range(333))

    def test_batch_validation(self):
        with pytest.raises(ValueError, match=">= 1 request"):
            MicroBatch(requests=(), ready_s=0.0)
        with pytest.raises(ValueError, match="close"):
            MicroBatch(requests=(req(0, 1.0),), ready_s=0.5)
        with pytest.raises(ValueError):
            MicroBatcher(max_batch_size=0, max_delay_s=0.0)


# ----------------------------------------------------------------------
class TestLRUCache:
    def test_hits_and_misses(self):
        cache = LRUEmbeddingCache(capacity_rows=4)
        hits, misses = cache.lookup(np.array([1, 2, 2, 3]))
        assert hits == 0 and list(misses) == [1, 2, 3]  # deduplicated
        cache.admit(misses)
        hits, misses = cache.lookup(np.array([2, 3, 9]))
        assert hits == 2 and list(misses) == [9]
        assert cache.stats.hit_rate == pytest.approx(2 / 6)  # deduped lookups

    def test_lru_eviction_order(self):
        cache = LRUEmbeddingCache(capacity_rows=2)
        cache.admit(np.array([1, 2]))
        cache.lookup(np.array([1]))  # touch 1 -> 2 is now LRU
        cache.admit(np.array([3]))  # evicts 2
        hits, misses = cache.lookup(np.array([1, 2, 3]))
        assert hits == 2 and list(misses) == [2]

    def test_zero_capacity_disables_caching(self):
        cache = LRUEmbeddingCache(capacity_rows=0)
        _, misses = cache.lookup(np.array([1, 2]))
        cache.admit(misses)
        hits, _ = cache.lookup(np.array([1, 2]))
        assert hits == 0 and len(cache) == 0

    def test_prefill_duplicates_neither_counted_nor_seated_twice(self):
        """Regression: prefill used to report len(first-capacity-slice)
        even when duplicate keys collapsed into fewer inserted rows."""
        for cls in (LRUEmbeddingCache, ReferenceLRUCache):
            cache = cls(capacity_rows=4)
            assert cache.prefill(np.array([5, 5, 3, 5, 3])) == 2
            assert len(cache) == 2
            hits, misses = cache.lookup(np.array([3, 5, 9]))
            assert hits == 2 and list(misses) == [9]

    def test_prefill_dedupes_before_truncating_to_capacity(self):
        """A duplicated hot key must not push a distinct key out of the
        capacity window."""
        for cls in (LRUEmbeddingCache, ReferenceLRUCache):
            cache = cls(capacity_rows=2)
            assert cache.prefill(np.array([7, 7, 8, 9])) == 2
            hits, misses = cache.lookup(np.array([7, 8, 9]))
            assert hits == 2 and list(misses) == [9]

    def test_prefill_keeps_hottest_rows_most_recent(self):
        for cls in (LRUEmbeddingCache, ReferenceLRUCache):
            cache = cls(capacity_rows=2)
            cache.prefill(np.array([10, 11]))  # hottest-first order
            cache.admit(np.array([12]))  # evicts the coldest: 11
            hits, misses = cache.lookup(np.array([10, 11, 12]))
            assert hits == 2 and list(misses) == [11]

    def test_probe_equals_lookup_then_admit(self):
        trace = [
            np.array([1, 2, 3]),
            np.array([2, 3, 4, 4]),
            np.array([1, 5]),
        ]
        split, fused = LRUEmbeddingCache(3), LRUEmbeddingCache(3)
        for keys in trace:
            hits, misses = split.lookup(keys)
            split.admit(misses)
            fused_hits, fused_misses = fused.probe(keys)
            assert fused_hits == hits
            assert np.array_equal(fused_misses, misses)
        assert split.stats == fused.stats
        assert np.array_equal(split.contents(), fused.contents())

    @pytest.mark.parametrize("capacity", [0, 4])
    def test_negative_row_ids_rejected_everywhere(self, capacity):
        """Both implementations enforce the same id domain on every
        operation (including the capacity-0 control arm), so a corrupt
        trace fails identically whichever backs the service."""
        for cls in (LRUEmbeddingCache, ReferenceLRUCache):
            cache = cls(capacity)
            for op in (cache.lookup, cache.admit, cache.probe,
                       cache.prefill):
                with pytest.raises(ValueError, match="non-negative"):
                    op(np.array([3, -1]))

    def test_vectorized_matches_reference_fuzz(self):
        """Acceptance: the numpy fast path reproduces the OrderedDict
        reference's hit/miss/eviction accounting bit-for-bit under
        random capacities and dup-heavy batches."""
        rng = np.random.default_rng(123)
        for _ in range(60):
            capacity = int(rng.integers(0, 24))
            fast, ref = (
                LRUEmbeddingCache(capacity),
                ReferenceLRUCache(capacity),
            )
            for _ in range(40):
                op = int(rng.integers(0, 4))
                # a small key universe makes batches duplicate-heavy
                keys = rng.integers(0, 30, size=int(rng.integers(0, 16)))
                if op == 0:
                    got, want = fast.lookup(keys), ref.lookup(keys)
                    assert got[0] == want[0]
                    assert np.array_equal(got[1], want[1])
                elif op == 1:
                    fast.admit(keys)
                    ref.admit(keys)
                elif op == 2:
                    assert fast.prefill(keys) == ref.prefill(keys)
                else:
                    got, want = fast.probe(keys), ref.probe(keys)
                    assert got[0] == want[0]
                    assert np.array_equal(got[1], want[1])
                assert len(fast) == len(ref)
                assert np.array_equal(fast.contents(), ref.contents())
                assert fast.stats == ref.stats

    def test_vectorized_matches_reference_on_served_trace(self):
        """The whole serving report — latencies, breakdowns, cache
        accounting — is identical whichever implementation backs the
        service."""
        reqs = RequestStream(
            WorkloadConfig(
                qps=30_000.0, num_requests=1200, num_lookups=6,
                key_space=800, skew=1.1, seed=9,
            )
        ).generate()
        reports = {}
        for cls in (LRUEmbeddingCache, ReferenceLRUCache):
            sim = SimCluster(Cluster(4, 2, "A100"))
            svc = InferenceService(
                sim,
                tiny_model(),
                Placement("disaggregated", emb_hosts=1),
                MicroBatcher(16, 0.001),
                cls(256),
            )
            reports[cls.__name__] = svc.serve(reqs).to_dict()
        assert (
            reports["LRUEmbeddingCache"] == reports["ReferenceLRUCache"]
        )

    def test_hit_rate_monotone_in_skew(self):
        """Hotter traffic -> better LRU hit rate (the FlexEMR premise)."""
        rates = []
        for skew in (0.0, 0.6, 1.2):
            stream = RequestStream(
                WorkloadConfig(
                    qps=1000.0,
                    num_requests=600,
                    num_lookups=8,
                    key_space=5000,
                    skew=skew,
                    seed=2,
                )
            )
            cache = LRUEmbeddingCache(capacity_rows=256)
            for batch in MicroBatcher(32, 0.01).form_batches(stream.generate()):
                _, misses = cache.lookup(batch.keys)
                cache.admit(misses)
            rates.append(cache.stats.hit_rate)
        assert rates[0] < rates[1] < rates[2]


# ----------------------------------------------------------------------
def make_service(strategy: str, cluster=None, **kw) -> InferenceService:
    sim = SimCluster(cluster or Cluster(num_hosts=4, gpus_per_host=2, generation="A100"))
    return InferenceService(
        sim,
        kw.pop("model", tiny_model()),
        Placement(strategy, emb_hosts=kw.pop("emb_hosts", 1)),
        MicroBatcher(
            kw.pop("max_batch_size", 16), kw.pop("max_delay_s", 0.001)
        ),
        LRUEmbeddingCache(kw.pop("cache_rows", 512)),
    )


class TestInferenceService:
    def _trace(self, qps=20_000.0, n=2000, seed=3, **cfg):
        return RequestStream(
            WorkloadConfig(
                qps=qps, num_requests=n, num_lookups=4, key_space=2000,
                seed=seed, **cfg
            )
        ).generate()

    def test_percentiles_deterministic_under_fixed_seed(self):
        reqs = self._trace()
        a = make_service("colocated").serve(reqs)
        b = make_service("colocated").serve(self._trace())
        assert a.to_dict() == b.to_dict()
        assert a.latency_ms["p50"] <= a.latency_ms["p95"] <= a.latency_ms["p99"]

    def test_timeline_has_all_serving_phases(self):
        svc = make_service("colocated")
        svc.serve(self._trace(n=500))
        breakdown = svc.sim.timeline.breakdown()
        assert Phase.QUEUE in breakdown
        assert Phase.EMBEDDING_COMM in breakdown
        assert Phase.COMPUTE in breakdown
        # the dense-forward events carry real flop counts (bugfix)
        assert svc.sim.timeline.total_flops(Phase.COMPUTE) > 0

    def test_report_accounts_every_request(self):
        reqs = self._trace(n=777)
        report = make_service("disaggregated").serve(reqs)
        assert report.num_requests == 777
        assert report.num_batches >= 777 // 16
        assert report.throughput_rps > 0
        assert 0.0 <= report.cache_hit_rate <= 1.0

    def test_disaggregated_beats_colocated_p99_at_high_qps(self):
        """The acceptance claim: past the colocated arm's fabric
        saturation, the disaggregated tier keeps the tail flat."""
        cluster = Cluster(num_hosts=8, gpus_per_host=4, generation="A100")
        model = ServingModel(
            name="dlrm-like", num_lookups=26, embedding_dim=128,
            dense_mflops=5.0,
        )
        reqs = RequestStream(
            WorkloadConfig(
                qps=3_000_000.0, num_requests=12_000, num_lookups=26,
                key_space=100_000, skew=1.0, seed=7,
            )
        ).generate()
        reports = {}
        for strategy in ("colocated", "disaggregated"):
            svc = make_service(
                strategy, cluster=cluster, model=model, emb_hosts=2,
                max_batch_size=64, cache_rows=16_384,
            )
            reports[strategy] = svc.serve(reqs)
        assert (
            reports["disaggregated"].latency_ms["p99"]
            < reports["colocated"].latency_ms["p99"]
        )
        # the colocated arm is saturated; the disaggregated one is not
        assert (
            reports["disaggregated"].throughput_rps
            > reports["colocated"].throughput_rps
        )

    def test_fetch_events_record_the_priced_payload(self):
        """Each EMBEDDING_COMM event's nbytes must reproduce its
        seconds through the cost model (the per-rank payload
        convention of repro.sim.cluster)."""
        svc = make_service("colocated")
        svc.serve(self._trace(n=400))
        events = [
            e for e in svc.sim.timeline.events
            if e.phase is Phase.EMBEDDING_COMM
        ]
        assert events
        for event in events[:10]:
            repriced = svc.sim.cost_model.alltoall(svc._world, event.nbytes)
            assert event.seconds == pytest.approx(repriced.seconds)
            assert event.world_size == svc._world.world_size

    def test_fetch_prices_id_and_row_legs_symmetrically(self):
        """Regression: the colocated arm used to bill only the row leg
        (disaggregated billed ids + rows), skewing the placement
        comparison toward colocated.  Both arms must price
        row_bytes + ID_WIRE_BYTES per miss row."""
        import math

        model = tiny_model()
        reqs = self._trace(n=300)
        first_misses = len(
            np.unique(
                MicroBatcher(16, 0.001).form_batches(reqs)[0].keys
            )
        )
        per_miss = model.row_bytes + ID_WIRE_BYTES
        svc_c = make_service("colocated", model=model)
        svc_c.serve(reqs)
        event = next(
            e for e in svc_c.sim.timeline.events
            if e.phase is Phase.EMBEDDING_COMM
        )
        world = svc_c._world.world_size
        assert event.nbytes == max(
            1, math.ceil(first_misses * per_miss / world)
        )
        svc_d = make_service("disaggregated", model=model)
        svc_d.serve(reqs)
        event_d = next(
            e for e in svc_d.sim.timeline.events
            if e.phase is Phase.EMBEDDING_COMM
        )
        streams = svc_d.sim.cluster.gpus_per_host
        assert event_d.nbytes == max(
            1, math.ceil(first_misses * per_miss / streams)
        )

    def test_cache_shrinks_fetch_traffic(self):
        svc_cached = make_service("disaggregated", cache_rows=1024)
        svc_cold = make_service("disaggregated", cache_rows=0)
        reqs = self._trace(n=1000, skew=1.2)
        svc_cached.serve(reqs)
        svc_cold.serve(reqs)
        bytes_cached = svc_cached.sim.timeline.bytes_by_phase()[Phase.EMBEDDING_COMM]
        bytes_cold = svc_cold.sim.timeline.bytes_by_phase()[Phase.EMBEDDING_COMM]
        assert bytes_cached < bytes_cold

    def test_report_covers_only_its_own_trace_on_reuse(self):
        """Regression: breakdown and hit rate used to accumulate across
        serve() calls while percentiles stayed per-trace."""
        svc = make_service("colocated")
        first = svc.serve(self._trace(n=600))
        second = svc.serve(self._trace(n=600))
        # Same trace, same dense work: the compute bucket must not double.
        assert second.breakdown_ms["compute"] == pytest.approx(
            first.breakdown_ms["compute"], rel=0.01
        )
        # Per-trace hit accounting (the warm cache makes run 2 better).
        assert second.cache_hits + second.cache_misses == (
            first.cache_hits + first.cache_misses
        )
        assert second.cache_hit_rate > first.cache_hit_rate

    def test_single_request_trace_serializes_to_valid_json(self):
        """Regression: offered_qps was float('inf'), which json.dumps
        emits as the non-standard 'Infinity' token."""
        import json

        report = make_service("colocated").serve([req(0, 0.0, keys=(1, 2))])
        payload = json.dumps(report.to_dict())
        assert "Infinity" not in payload
        assert json.loads(payload)["offered_qps"] is None

    def test_placement_validation(self):
        with pytest.raises(ValueError, match="unknown placement"):
            Placement("sharded")
        with pytest.raises(ValueError, match="dense host"):
            make_service("disaggregated", emb_hosts=4)
        with pytest.raises(ValueError, match="empty"):
            make_service("colocated").serve([])

    def test_from_profile_geometry(self):
        from repro.perf.profiles import baseline_profile

        profile = baseline_profile("dlrm")
        model = ServingModel.from_profile(profile)
        assert model.num_lookups == profile.num_sparse
        assert model.embedding_dim == profile.embedding_dim
        assert model.row_bytes == profile.embedding_dim * 4
        assert ID_WIRE_BYTES == 8


# ----------------------------------------------------------------------
class TestServeSpec:
    def test_json_round_trip(self):
        spec = RunSpec(
            name="serve",
            cluster=ClusterSpec(num_hosts=4, gpus_per_host=2),
            serve=ServeSpec(
                qps=123_456.0,
                num_requests=777,
                skew=0.7,
                cache_rows=99,
                placement="disaggregated",
                emb_hosts=1,
            ),
        )
        assert RunSpec.from_json(spec.to_json()) == spec
        assert ServeSpec.from_dict(spec.serve.to_dict()) == spec.serve

    def test_validation(self):
        with pytest.raises(SpecError, match="placement"):
            ServeSpec(placement="managed")
        with pytest.raises(SpecError, match="qps"):
            ServeSpec(qps=-1.0)
        with pytest.raises(SpecError, match="dense host"):
            RunSpec(
                cluster=ClusterSpec(num_hosts=2, gpus_per_host=2),
                serve=ServeSpec(placement="disaggregated", emb_hosts=2),
            )
        # colocated-only serving never needs a dense host split
        RunSpec(
            cluster=ClusterSpec(num_hosts=1, gpus_per_host=2),
            serve=ServeSpec(placement="colocated"),
        )

    def test_serve_plus_model_validates_eagerly(self):
        """Regression: a serve+model spec with missing prerequisites
        used to construct fine and fail mid-run."""
        from repro.api import DataSpec, ModelSpec, PartitionSpec

        with pytest.raises(SpecError, match="data section"):
            RunSpec(model=ModelSpec(variant="flat"), serve=ServeSpec())
        with pytest.raises(SpecError, match="partition section"):
            RunSpec(
                data=DataSpec(),
                model=ModelSpec(variant="dmt"),
                serve=ServeSpec(),
            )
        # with the prerequisites present it validates
        RunSpec(
            data=DataSpec(),
            model=ModelSpec(variant="dmt"),
            partition=PartitionSpec(strategy="naive"),
            serve=ServeSpec(),
        )

    def test_default_emb_hosts_scales_with_cluster(self):
        spec = ServeSpec()
        assert spec.resolved_emb_hosts(2) == 1
        assert spec.resolved_emb_hosts(8) == 2
        assert ServeSpec(emb_hosts=3).resolved_emb_hosts(8) == 3

    def test_spec_model_is_served_even_without_training(self):
        """A declared model section must never be silently replaced by
        the paper-scale profile named by serve.kind."""
        from repro.api import DataSpec, ModelSpec

        spec = RunSpec(
            name="serve-untrained-model",
            cluster=ClusterSpec(num_hosts=4, gpus_per_host=2),
            data=DataSpec(num_samples=500),
            model=ModelSpec(family="dcn", variant="flat", cross_layers=2,
                            embedding_dim=16),
            serve=ServeSpec(kind="dlrm", qps=20_000.0, num_requests=400,
                            emb_hosts=1),
        )
        art = Session(spec).serve()
        assert art.model.name == "DCN"  # the spec's model, not kind's
        assert art.model.embedding_dim == 16
        assert art.model.num_lookups == 26

    def test_session_serve_stage(self):
        spec = RunSpec(
            name="session-serve",
            cluster=ClusterSpec(num_hosts=4, gpus_per_host=2),
            serve=ServeSpec(qps=50_000.0, num_requests=1500, emb_hosts=1),
        )
        session = Session(spec)
        art = session.serve()
        assert set(art.reports) == {"colocated", "disaggregated"}
        assert art.p99_speedup is not None
        result = session.run()
        assert result.serve is not None
        assert "p99_speedup_disaggregated" in result.serve
        assert "serve" in result.render()
        # the JSON twin carries cache + per-phase breakdown
        coloc = result.serve["placements"]["colocated"]
        assert "hit_rate" in coloc["cache"]
        assert "embedding_comm" in coloc["breakdown_ms"]


class TestEmptyReportMarker:
    """Regression: a replica can finish a trace (or an autoscaler
    window) having served nothing; the old ``build_report`` crashed on
    ``max()`` over an empty arrival list.  The explicit empty marker
    keeps the report shape and is detectable."""

    def test_empty_marker_shape_and_flag(self):
        report = ServingReport.empty("disaggregated", "tiny")
        assert report.is_empty
        assert report.num_requests == 0
        assert report.offered_qps is None
        assert report.latency_ms["p99"] == 0.0
        # Round-trips through the dict form like any other report.
        assert report.to_dict()["num_requests"] == 0

    def test_build_report_returns_marker_on_zero_traffic(self):
        report = build_report(
            placement="colocated",
            model="tiny",
            requests=[],
            num_batches=0,
            latencies_s=np.asarray([]),
            last_done_s=0.0,
            hits=0,
            misses=0,
            breakdown_ms={},
        )
        assert report.is_empty

    def test_served_report_is_not_empty(self):
        report = build_report(
            placement="colocated",
            model="tiny",
            requests=[req(0, 0.0, keys=(1, 2))],
            num_batches=1,
            latencies_s=np.asarray([0.001]),
            last_done_s=0.002,
            hits=1,
            misses=1,
            breakdown_ms={},
        )
        assert not report.is_empty
