"""Tests for the serving fleet (routers, scenarios, fleet replay) and
the serving property suite."""

import numpy as np
import pytest

from repro.api import ClusterSpec, RunSpec, ServeSpec, Session, SpecError
from repro.api.spec import SERVE_ROUTERS, SERVE_SCENARIOS
from repro.hardware import Cluster
from repro.serving import (
    ConsistentHashRouter,
    InferenceService,
    LRUEmbeddingCache,
    MicroBatcher,
    Placement,
    PowerOfTwoChoicesRouter,
    ROUTER_POLICIES,
    ReferenceLRUCache,
    RequestStream,
    RoundRobinRouter,
    SCENARIOS,
    ServingFleet,
    ServingModel,
    WorkloadConfig,
    make_router,
)
from repro.sim import SimCluster


def tiny_model(**overrides) -> ServingModel:
    kwargs = dict(
        name="tiny", num_lookups=4, embedding_dim=16, dense_mflops=1.0
    )
    kwargs.update(overrides)
    return ServingModel(**kwargs)


def trace(qps=50_000.0, n=2000, seed=3, **cfg):
    defaults = dict(num_lookups=4, key_space=2000)
    defaults.update(cfg)
    return RequestStream(
        WorkloadConfig(qps=qps, num_requests=n, seed=seed, **defaults)
    ).generate()


def make_fleet(strategy="disaggregated", cluster=None, **kw) -> ServingFleet:
    sim = SimCluster(
        cluster or Cluster(num_hosts=4, gpus_per_host=2, generation="A100")
    )
    return ServingFleet(
        sim,
        kw.pop("model", tiny_model()),
        Placement(strategy, emb_hosts=kw.pop("emb_hosts", 1)),
        MicroBatcher(
            kw.pop("max_batch_size", 16), kw.pop("max_delay_s", 0.001)
        ),
        **kw,
    )


# ----------------------------------------------------------------------
class TestScenarios:
    def test_spec_constants_stay_in_sync_with_serving(self):
        """ServeSpec mirrors the serving-package constants so specs stay
        importable without the serving stack; this guards the copy."""
        assert SERVE_SCENARIOS == SCENARIOS
        assert SERVE_ROUTERS == ROUTER_POLICIES

    @pytest.mark.parametrize(
        "cfg",
        [
            dict(scenario="diurnal", diurnal_period_s=0.02,
                 diurnal_amplitude=0.8),
            dict(scenario="flash", flash_start_s=0.01,
                 flash_duration_s=0.005, flash_factor=6.0),
            dict(churn_keys_per_s=40_000.0),
        ],
        ids=["diurnal", "flash", "churn"],
    )
    def test_streams_are_deterministic_and_sorted(self, cfg):
        config = WorkloadConfig(
            qps=100_000.0, num_requests=1500, key_space=5000, seed=11, **cfg
        )
        a = RequestStream(config).generate()
        assert a == RequestStream(config).generate()
        arrivals = [r.arrival_s for r in a]
        assert arrivals == sorted(arrivals)

    def test_diurnal_load_concentrates_in_the_peak_half(self):
        config = WorkloadConfig(
            qps=100_000.0, num_requests=12_000, scenario="diurnal",
            diurnal_period_s=0.05, diurnal_amplitude=0.9, seed=0,
        )
        t = np.array([r.arrival_s for r in RequestStream(config).generate()])
        phase = (t % 0.05) / 0.05
        # sin > 0 on the first half-period: that's where the peak lives
        peak, trough = np.sum(phase < 0.5), np.sum(phase >= 0.5)
        assert peak > 2.0 * trough

    def test_flash_crowd_multiplies_the_local_rate(self):
        config = WorkloadConfig(
            qps=50_000.0, num_requests=12_000, scenario="flash",
            flash_start_s=0.05, flash_duration_s=0.05, flash_factor=5.0,
            seed=0,
        )
        t = np.array([r.arrival_s for r in RequestStream(config).generate()])
        inside = np.sum((t >= 0.05) & (t < 0.10))
        before = np.sum(t < 0.05)
        assert inside > 2.5 * before  # ~5x modulo Poisson noise

    def test_churn_shifts_keys_by_the_documented_drift(self):
        base_cfg = dict(
            qps=20_000.0, num_requests=400, num_lookups=3,
            key_space=1000, seed=5,
        )
        plain = RequestStream(WorkloadConfig(**base_cfg)).generate()
        drifted = RequestStream(
            WorkloadConfig(churn_keys_per_s=3000.0, **base_cfg)
        ).generate()
        for still, moved in zip(plain, drifted):
            assert moved.arrival_s == still.arrival_s
            shift = int(np.floor(3000.0 * still.arrival_s))
            assert np.array_equal(
                moved.keys, (still.keys + shift) % 1000
            )

    def test_churn_makes_the_cache_relearn(self):
        base_cfg = dict(
            qps=100_000.0, num_requests=4000, num_lookups=8,
            key_space=20_000, skew=1.2, seed=2,
        )
        rates = {}
        for churn in (0.0, 500_000.0):
            stream = RequestStream(
                WorkloadConfig(churn_keys_per_s=churn, **base_cfg)
            )
            cache = LRUEmbeddingCache(512)
            for batch in MicroBatcher(32, 0.001).form_batches(
                stream.generate()
            ):
                cache.probe(batch.keys)
            rates[churn] = cache.stats.hit_rate
        assert rates[500_000.0] < rates[0.0]

    def test_scenario_validation(self):
        with pytest.raises(ValueError, match="scenario"):
            WorkloadConfig(scenario="weekend")
        with pytest.raises(ValueError, match="flash_duration_s"):
            WorkloadConfig(scenario="flash")
        with pytest.raises(ValueError, match="amplitude"):
            WorkloadConfig(scenario="diurnal", diurnal_amplitude=1.5)
        with pytest.raises(ValueError, match="churn"):
            WorkloadConfig(churn_keys_per_s=-1.0)


# ----------------------------------------------------------------------
class TestRouters:
    def test_round_robin_cycles(self):
        router = RoundRobinRouter()
        router.bind(3)
        reqs = trace(n=7)
        assert list(router.route_trace(reqs, 0.001)) == [
            0, 1, 2, 0, 1, 2, 0,
        ]

    def test_hash_router_pins_primary_keys(self):
        router = ConsistentHashRouter()
        router.bind(4)
        reqs = trace(n=500, seed=1)
        assignment = router.route_trace(reqs, 0.001)
        by_key = {}
        for req_, rep in zip(reqs, assignment):
            primary = int(req_.keys[0])
            assert by_key.setdefault(primary, int(rep)) == int(rep)
        assert len(set(assignment.tolist())) == 4  # all replicas used

    def test_hash_router_moves_few_keys_when_fleet_grows(self):
        """The consistent-hashing contract: adding a replica remaps
        only a small slice of the key space."""
        reqs = trace(n=2000, seed=2, key_space=50_000)
        router = ConsistentHashRouter()
        router.bind(8)
        before = router.route_trace(reqs, 0.001)
        router.bind(9)
        after = router.route_trace(reqs, 0.001)
        moved = np.mean(before != after)
        assert moved < 0.35  # ideal 1/9 ~ 0.11, generous slack

    def test_p2c_router_is_seeded_and_in_range(self):
        reqs = trace(n=800, seed=4)
        router = PowerOfTwoChoicesRouter(seed=7)
        router.bind(5)
        a = router.route_trace(reqs, 0.001)
        router.bind(5)
        b = router.route_trace(reqs, 0.001)
        assert np.array_equal(a, b)
        assert a.min() >= 0 and a.max() < 5

    def test_p2c_balances_a_burst_better_than_hash(self):
        reqs = trace(n=3000, seed=6, qps=500_000.0, skew=1.3)
        counts = {}
        for name in ("hash", "p2c"):
            router = make_router(name)
            router.bind(6)
            assignment = router.route_trace(reqs, 0.001)
            counts[name] = np.bincount(assignment, minlength=6)
        assert counts["p2c"].max() < counts["hash"].max()

    def test_make_router_and_bind_validation(self):
        with pytest.raises(ValueError, match="router policy"):
            make_router("random")
        with pytest.raises(ValueError, match="num_replicas"):
            RoundRobinRouter().bind(0)
        with pytest.raises(ValueError, match="vnodes"):
            ConsistentHashRouter(vnodes=0)


# ----------------------------------------------------------------------
class TestRouterMembership:
    """Live-membership masks: dead or drained replicas must never be
    routed to, under any policy and any membership history."""

    def test_set_live_validation(self):
        router = RoundRobinRouter()
        router.bind(4)
        with pytest.raises(ValueError, match="length 4"):
            router.set_live([True, False])
        with pytest.raises(ValueError, match="at least one"):
            router.set_live([False] * 4)

    def test_all_live_matches_pre_membership_routing(self):
        """With every replica live, set_live is a no-op: the routed
        assignment is identical to a router that never heard of
        membership."""
        reqs = trace(n=600, seed=8)
        for name in ROUTER_POLICIES:
            fresh = make_router(name)
            fresh.bind(5)
            touched = make_router(name)
            touched.bind(5)
            touched.set_live([True] * 5)
            assert np.array_equal(
                fresh.route_trace(reqs, 0.001),
                touched.route_trace(reqs, 0.001),
            )

    def test_dead_replicas_never_routed_fuzz(self):
        """Fuzz membership churn: random masks between bursts of
        route_one calls; every routed replica must be live at the time
        of routing, for every policy."""
        rng = np.random.default_rng(42)
        reqs = trace(n=400, seed=9)
        for name in ROUTER_POLICIES:
            router = make_router(name)
            router.bind(6)
            cursor = 0
            for _ in range(24):
                mask = rng.random(6) < 0.6
                if not mask.any():
                    mask[int(rng.integers(0, 6))] = True
                router.set_live(mask)
                live = set(router.live_replicas.tolist())
                depths = rng.integers(0, 8, size=6).astype(np.float64)
                for _ in range(12):
                    req_ = reqs[cursor % len(reqs)]
                    cursor += 1
                    rep = router.route_one(
                        req_, req_.arrival_s, depths=depths
                    )
                    assert rep in live

    def test_route_trace_respects_membership(self):
        reqs = trace(n=600, seed=10)
        for name in ROUTER_POLICIES:
            router = make_router(name)
            router.bind(5)
            router.set_live([True, False, True, False, True])
            assignment = router.route_trace(reqs, 0.001)
            assert set(assignment.tolist()) <= {0, 2, 4}

    def test_hash_ring_rebuild_moves_only_the_dead_replicas_keys(self):
        """Consistent hashing honored on failure: killing one replica
        re-homes only the keys it owned — survivors keep theirs."""
        reqs = trace(n=2000, seed=2, key_space=50_000)
        router = ConsistentHashRouter()
        router.bind(6)
        before = router.route_trace(reqs, 0.001)
        router.set_live([True, True, True, False, True, True])
        after = router.route_trace(reqs, 0.001)
        survivors = before != 3
        assert np.array_equal(before[survivors], after[survivors])
        assert not np.any(after == 3)
        # Revival restores the original assignment exactly.
        router.set_live([True] * 6)
        assert np.array_equal(before, router.route_trace(reqs, 0.001))


# ----------------------------------------------------------------------
class TestServingFleet:
    def test_every_request_served_exactly_once(self):
        reqs = trace(n=1111)
        report = make_fleet(cache_rows=256).serve(reqs)
        assert report.fleet.num_requests == 1111
        assert sum(report.requests_per_replica) == 1111
        assert sum(r.num_requests for r in report.replicas.values()) == 1111
        assert report.num_replicas == 3  # 4 hosts - 1 embedding host

    def test_fleet_is_deterministic(self):
        for policy in ROUTER_POLICIES:
            a = make_fleet(router=policy, cache_rows=128).serve(trace())
            b = make_fleet(router=policy, cache_rows=128).serve(trace())
            assert a.to_dict() == b.to_dict()

    def test_single_replica_fleet_matches_single_service(self):
        """A 1-replica fleet is the single service with its own batcher
        and cache: same latencies, same cache accounting."""
        reqs = trace(n=900)
        cluster = Cluster(num_hosts=2, gpus_per_host=2, generation="A100")
        fleet_report = make_fleet(
            cluster=cluster, cache_rows=256, num_replicas=1
        ).serve(reqs)
        sim = SimCluster(cluster)
        svc = InferenceService(
            sim,
            tiny_model(),
            Placement("disaggregated", emb_hosts=1),
            MicroBatcher(16, 0.001),
            LRUEmbeddingCache(256),
        )
        single = svc.serve(reqs)
        agg = fleet_report.fleet
        assert agg.latency_ms == single.latency_ms
        assert agg.cache_hits == single.cache_hits
        assert agg.cache_misses == single.cache_misses
        assert agg.num_batches == single.num_batches

    def test_vectorized_and_reference_caches_give_identical_fleets(self):
        reqs = trace(n=1200, skew=1.1)
        reports = {}
        for factory in (
            lambda: LRUEmbeddingCache(200),
            lambda: ReferenceLRUCache(200),
        ):
            reports[factory().__class__.__name__] = make_fleet(
                router="hash", cache_factory=factory
            ).serve(reqs)
        assert (
            reports["LRUEmbeddingCache"].to_dict()
            == reports["ReferenceLRUCache"].to_dict()
        )

    def test_report_snapshot_isolation_on_reuse(self):
        """Serving a second trace must report only that trace — not
        accumulate events or cache counters from the first."""
        fleet = make_fleet(cache_rows=256)
        first = fleet.serve(trace(n=800))
        second = fleet.serve(trace(n=800))
        assert (
            second.fleet.cache_hits + second.fleet.cache_misses
            == first.fleet.cache_hits + first.fleet.cache_misses
        )
        # warm caches only improve the second pass
        assert second.fleet.cache_hit_rate > first.fleet.cache_hit_rate
        assert second.fleet.breakdown_ms["compute"] == pytest.approx(
            first.fleet.breakdown_ms["compute"], rel=0.01
        )

    def test_breakdown_shape_matches_aggregate_on_all_hit_trace(self):
        """Phase keys exist only where events were recorded — the same
        convention for replica reports as for the timeline-derived
        aggregate, so consumers can read them uniformly."""
        fleet = make_fleet(cache_rows=256)
        for cache in fleet.caches:
            cache.prefill(np.arange(100))
        report = fleet.serve(trace(n=400, key_space=100))
        assert "embedding_comm" not in report.fleet.breakdown_ms
        for replica_report in report.replicas.values():
            assert set(replica_report.breakdown_ms) == {"compute", "queue"}
        assert report.fleet.cache_hit_rate == 1.0

    def test_oversubscribed_replicas_time_share_hosts(self):
        """More replicas than dense hosts slows each replica's dense
        forward by the oversubscription factor."""
        cluster = Cluster(num_hosts=2, gpus_per_host=2, generation="A100")
        lean = make_fleet(cluster=cluster, num_replicas=1)
        packed = make_fleet(cluster=cluster, num_replicas=4)
        assert lean.host_share == 1.0
        assert packed.host_share == pytest.approx(0.25)
        t_lean = lean.engine.dense_seconds(16, lean.host_share)
        t_packed = packed.engine.dense_seconds(16, packed.host_share)
        assert t_packed == pytest.approx(4.0 * t_lean)

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            make_fleet().serve([])


# ----------------------------------------------------------------------
class TestServingProperties:
    """The serving property suite: invariants any replay must satisfy."""

    def test_latency_at_least_batching_delay_single_service(self):
        reqs = trace(n=1500, qps=200_000.0)
        batcher = MicroBatcher(16, 0.002)
        sim = SimCluster(Cluster(4, 2, "A100"))
        svc = InferenceService(
            sim,
            tiny_model(),
            Placement("colocated"),
            batcher,
            LRUEmbeddingCache(256),
        )
        report = svc.serve(reqs)
        batches = batcher.form_batches(reqs)
        waits = [
            batch.ready_s - req.arrival_s
            for batch in batches
            for req in batch.requests
        ]
        assert report.latency_ms["mean"] >= np.mean(waits) * 1e3
        assert report.latency_ms["max"] >= np.max(waits) * 1e3

    def test_latency_at_least_batching_delay_fleet(self):
        reqs = trace(n=1500, qps=200_000.0)
        batcher = MicroBatcher(16, 0.002)
        fleet = make_fleet(
            max_batch_size=16, max_delay_s=0.002, cache_rows=256
        )
        report = fleet.serve(reqs)
        # round_robin on a sorted trace is reproducible here: replica i
        # serves requests i, i+N, i+2N, ...
        waits = []
        for replica in range(fleet.num_replicas):
            mine = reqs[replica :: fleet.num_replicas]
            waits.extend(
                batch.ready_s - req.arrival_s
                for batch in batcher.form_batches(mine)
                for req in batch.requests
            )
        assert report.fleet.latency_ms["mean"] >= np.mean(waits) * 1e3

    @pytest.mark.parametrize("skew", [0.8, 1.2])
    def test_hit_rate_bounded_by_hot_mass(self, skew):
        """An LRU of C rows cannot beat the probability mass of the C
        hottest rows (RequestStream.hot_fraction)."""
        capacity = 1000
        config = WorkloadConfig(
            qps=200_000.0, num_requests=6000, num_lookups=8,
            key_space=20_000, skew=skew, seed=4,
        )
        stream = RequestStream(config)
        cache = LRUEmbeddingCache(capacity)
        for batch in MicroBatcher(32, 0.001).form_batches(
            stream.generate()
        ):
            cache.probe(batch.keys)
        assert cache.stats.hit_rate <= stream.hot_fraction(capacity)

    def test_fleet_hit_rate_bounded_by_hot_mass(self):
        capacity = 1000
        config = WorkloadConfig(
            qps=500_000.0, num_requests=6000, num_lookups=8,
            key_space=20_000, skew=1.2, seed=4,
        )
        stream = RequestStream(config)
        for policy in ROUTER_POLICIES:
            report = make_fleet(
                router=policy, cache_rows=capacity,
                max_batch_size=32, model=tiny_model(num_lookups=8),
            ).serve(stream.generate())
            assert report.fleet.cache_hit_rate <= stream.hot_fraction(
                capacity
            )

    def test_percentiles_ordered_and_throughput_positive(self):
        for policy in ROUTER_POLICIES:
            report = make_fleet(router=policy, cache_rows=64).serve(
                trace(n=700)
            )
            for rep in [report.fleet, *report.replicas.values()]:
                lat = rep.latency_ms
                assert lat["p50"] <= lat["p95"] <= lat["p99"] <= lat["max"]
                assert rep.throughput_rps > 0


# ----------------------------------------------------------------------
class TestFleetSpec:
    def test_fleet_spec_round_trips(self):
        spec = RunSpec(
            name="fleet",
            cluster=ClusterSpec(num_hosts=8, gpus_per_host=4),
            serve=ServeSpec(
                qps=250_000.0,
                num_requests=999,
                placement="disaggregated",
                emb_hosts=2,
                fleet_replicas=6,
                router="p2c",
                scenario="flash",
                flash_start_s=0.001,
                flash_duration_s=0.001,
                flash_factor=4.0,
                churn_keys_per_s=10_000.0,
            ),
        )
        assert RunSpec.from_json(spec.to_json()) == spec
        assert spec.serve.uses_fleet

    def test_unused_knobs_must_stay_default(self):
        with pytest.raises(SpecError, match="diurnal_amplitude"):
            ServeSpec(diurnal_amplitude=0.9)  # scenario is poisson
        with pytest.raises(SpecError, match="flash_factor"):
            ServeSpec(flash_factor=2.0)
        with pytest.raises(SpecError, match="router"):
            ServeSpec(router="p2c")  # no fleet_replicas
        with pytest.raises(SpecError, match="scenario"):
            ServeSpec(scenario="weekend")
        with pytest.raises(SpecError, match="fleet_replicas"):
            ServeSpec(fleet_replicas=0)

    def test_session_fleet_stage(self):
        spec = RunSpec(
            name="session-fleet",
            cluster=ClusterSpec(num_hosts=4, gpus_per_host=2),
            serve=ServeSpec(
                qps=100_000.0,
                num_requests=1200,
                emb_hosts=1,
                fleet_replicas=3,
                router="hash",
            ),
        )
        session = Session(spec)
        art = session.serve()
        assert set(art.fleet_reports) == {"colocated", "disaggregated"}
        assert art.reports["colocated"] is (
            art.fleet_reports["colocated"].fleet
        )
        result = session.run()
        assert result.serve["fleet"]["disaggregated"]["router"] == "hash"
        assert "fleet [disaggregated]" in result.render()
        # every replica's report is in the JSON twin
        detail = result.serve["fleet"]["colocated"]
        assert len(detail["replicas"]) == 3
