"""Tests for elementary nn layers, MLP, and gradient correctness."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import MLP, Identity, Linear, ReLU, Sequential, Sigmoid
from tests.util import check_module_gradients


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestLinear:
    def test_forward_shape(self, rng):
        layer = Linear(5, 3, rng=rng)
        assert layer(rng.standard_normal((8, 5))).shape == (8, 3)

    def test_forward_matches_manual(self, rng):
        layer = Linear(4, 2, rng=rng)
        x = rng.standard_normal((3, 4))
        np.testing.assert_allclose(
            layer(x), x @ layer.weight.data + layer.bias.data
        )

    def test_leading_dims_preserved(self, rng):
        """(B, F, N) inputs project along the last axis (tower modules)."""
        layer = Linear(4, 6, rng=rng)
        x = rng.standard_normal((2, 5, 4))
        assert layer(x).shape == (2, 5, 6)

    def test_gradients(self, rng):
        layer = Linear(4, 3, rng=rng)
        check_module_gradients(layer, rng.standard_normal((6, 4)), rng)

    def test_gradients_3d_input(self, rng):
        layer = Linear(3, 2, rng=rng)
        check_module_gradients(layer, rng.standard_normal((2, 4, 3)), rng)

    def test_no_bias(self, rng):
        layer = Linear(4, 3, rng=rng, bias=False)
        assert layer.bias is None
        assert layer.num_parameters() == 12

    def test_grad_accumulates(self, rng):
        layer = Linear(2, 2, rng=rng)
        x = rng.standard_normal((3, 2))
        layer(x)
        layer.backward(np.ones((3, 2)))
        g1 = layer.weight.grad.copy()
        layer(x)
        layer.backward(np.ones((3, 2)))
        np.testing.assert_allclose(layer.weight.grad, 2 * g1)

    def test_wrong_input_dim_raises(self, rng):
        with pytest.raises(ValueError, match="last dim"):
            Linear(4, 3, rng=rng)(rng.standard_normal((2, 5)))

    def test_backward_before_forward_raises(self, rng):
        with pytest.raises(RuntimeError):
            Linear(4, 3, rng=rng).backward(np.zeros((1, 3)))

    def test_flops(self):
        assert Linear(10, 20).flops_per_sample() == 400

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            Linear(0, 3)


class TestActivations:
    def test_relu_forward(self):
        out = ReLU()(np.array([-1.0, 0.0, 2.0]))
        np.testing.assert_array_equal(out, [0.0, 0.0, 2.0])

    def test_relu_backward_masks(self):
        relu = ReLU()
        relu(np.array([-1.0, 3.0]))
        np.testing.assert_array_equal(relu.backward(np.array([5.0, 5.0])), [0.0, 5.0])

    def test_sigmoid_range_and_extremes(self):
        out = Sigmoid()(np.array([-1000.0, 0.0, 1000.0]))
        assert out[0] == pytest.approx(0.0, abs=1e-12)
        assert out[1] == pytest.approx(0.5)
        assert out[2] == pytest.approx(1.0, abs=1e-12)
        assert np.all(np.isfinite(out))

    def test_sigmoid_gradients(self, rng):
        check_module_gradients(Sigmoid(), rng.standard_normal((4, 3)), rng)

    def test_identity_passthrough(self, rng):
        x = rng.standard_normal((2, 2))
        ident = Identity()
        np.testing.assert_array_equal(ident(x), x)
        np.testing.assert_array_equal(ident.backward(x), x)


class TestSequentialAndMLP:
    def test_sequential_composes(self, rng):
        seq = Sequential([Linear(4, 8, rng=rng), ReLU(), Linear(8, 2, rng=rng)])
        assert seq(rng.standard_normal((3, 4))).shape == (3, 2)

    def test_mlp_layer_structure(self, rng):
        mlp = MLP([13, 512, 256, 128], rng=rng)
        assert mlp.in_features == 13 and mlp.out_features == 128
        # 3 Linear + 3 ReLU (final_activation=True, DLRM bottom arch)
        assert len(mlp.net) == 6

    def test_mlp_no_final_activation_produces_logits(self, rng):
        mlp = MLP([8, 4, 1], rng=rng, final_activation=False)
        x = rng.standard_normal((64, 8)) * 10
        out = mlp(x)
        assert out.min() < 0  # a ReLU head could never go negative

    def test_mlp_gradients(self, rng):
        mlp = MLP([3, 5, 2], rng=rng)
        check_module_gradients(mlp, rng.standard_normal((4, 3)), rng)

    def test_mlp_flops(self):
        mlp = MLP([10, 20, 5])
        assert mlp.flops_per_sample() == 2 * (10 * 20 + 20 * 5)

    def test_mlp_num_parameters(self):
        mlp = MLP([10, 20, 5])
        assert mlp.num_parameters() == (10 * 20 + 20) + (20 * 5 + 5)

    def test_mlp_too_short_raises(self):
        with pytest.raises(ValueError):
            MLP([4])

    def test_state_dict_round_trip(self, rng):
        a = MLP([4, 3, 2], rng=np.random.default_rng(1))
        b = MLP([4, 3, 2], rng=np.random.default_rng(2))
        x = rng.standard_normal((5, 4))
        assert not np.allclose(a(x), b(x))
        b.load_state_dict(a.state_dict())
        np.testing.assert_allclose(a(x), b(x))

    def test_state_dict_mismatch_raises(self, rng):
        a = MLP([4, 3], rng=rng)
        b = MLP([4, 3, 2], rng=rng)
        with pytest.raises(KeyError):
            b.load_state_dict(a.state_dict())


@settings(max_examples=20, deadline=None)
@given(
    batch=st.integers(1, 8),
    n_in=st.integers(1, 6),
    n_out=st.integers(1, 6),
    seed=st.integers(0, 1000),
)
def test_linear_gradient_property(batch, n_in, n_out, seed):
    """Property: analytic gradients match numerics for any shape."""
    rng = np.random.default_rng(seed)
    layer = Linear(n_in, n_out, rng=rng)
    check_module_gradients(layer, rng.standard_normal((batch, n_in)), rng)
