"""Tests for the synthetic Criteo generator and loaders."""

import numpy as np
import pytest

from repro.data import (
    BatchIterator,
    SyntheticCriteoConfig,
    SyntheticCriteoDataset,
    random_batch,
    train_eval_split,
)
from repro.partitioner import interaction_from_activations
from repro.training.metrics import auc


@pytest.fixture
def small_ds():
    return SyntheticCriteoDataset(
        SyntheticCriteoConfig(num_sparse=8, num_blocks=2, cardinality=32),
        seed=0,
    )


class TestSyntheticCriteo:
    def test_shapes_and_dtypes(self, small_ds):
        dense, ids, labels = small_ds.sample(50, seed=1)
        assert dense.shape == (50, 13)
        assert ids.shape == (50, 8)
        assert set(np.unique(labels)) <= {0.0, 1.0}
        assert ids.min() >= 0 and ids.max() < 32

    def test_deterministic_given_seed(self, small_ds):
        a = small_ds.sample(20, seed=7)
        b = small_ds.sample(20, seed=7)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_different_seeds_differ(self, small_ds):
        a = small_ds.sample(20, seed=1)
        b = small_ds.sample(20, seed=2)
        assert not np.array_equal(a[1], b[1])

    def test_same_block_features_correlate(self, small_ds):
        """Planted structure: decoded latents within a block co-move."""
        _, ids, _ = small_ds.sample(4000, seed=3)
        v0 = small_ds.decoded_value(0, ids[:, 0])
        v1 = small_ds.decoded_value(1, ids[:, 1])  # same block as 0
        v7 = small_ds.decoded_value(7, ids[:, 7])  # other block
        within = np.corrcoef(v0, v1)[0, 1]
        across = abs(np.corrcoef(v0, v7)[0, 1])
        assert within > 0.5
        assert across < 0.15

    def test_raw_ids_are_scrambled(self, small_ds):
        """Bin permutation: raw id value is not monotone in the latent."""
        ids = np.arange(small_ds.cardinality)
        vals = small_ds.decoded_value(0, ids)
        assert not np.all(np.diff(vals) > 0)

    def test_labels_not_degenerate(self, small_ds):
        _, _, labels = small_ds.sample(2000, seed=4)
        assert 0.05 < labels.mean() < 0.95

    def test_labels_are_learnable_from_interactions(self, small_ds):
        """An oracle using the true within-block interactions scores
        well above chance -> the signal the models must recover exists."""
        dense, ids, labels = small_ds.sample(4000, seed=5)
        values = np.stack(
            [small_ds.decoded_value(f, ids[:, f]) for f in range(8)], axis=1
        )
        oracle = np.zeros(len(labels))
        for b, group in enumerate(small_ds.true_partition.groups):
            bm = values[:, list(group)].mean(axis=1)
            oracle += small_ds.block_weights[b] * (bm**2 - 1.0)
        oracle += dense @ small_ds.dense_weights
        assert auc(labels, oracle) > 0.70

    def test_block_structure_visible_in_embedding_space(self, small_ds):
        """One-hot style activations of same-block features interact."""
        _, ids, _ = small_ds.sample(1000, seed=6)
        # Use decoded values as stand-in 1-d "embeddings".
        acts = np.stack(
            [small_ds.decoded_value(f, ids[:, f]) for f in range(8)], axis=1
        )[:, :, None]
        I = interaction_from_activations(acts)
        within = np.mean([I[0, 1], I[1, 2], I[4, 5], I[5, 6]])
        across = np.mean([I[0, 4], I[1, 5], I[2, 6], I[3, 7]])
        assert within > across + 0.2

    def test_config_validation(self):
        with pytest.raises(ValueError, match="blocks"):
            SyntheticCriteoConfig(num_sparse=2, num_blocks=4)
        with pytest.raises(ValueError, match="rho"):
            SyntheticCriteoConfig(rho=1.5)
        with pytest.raises(ValueError):
            SyntheticCriteoDataset(SyntheticCriteoConfig(), seed=0).sample(0)


class TestRandomBatch:
    def test_shapes(self):
        dense, ids, labels = random_batch(16, 13, 26, 100)
        assert dense.shape == (16, 13)
        assert ids.shape == (16, 26)
        assert labels.shape == (16,)

    def test_pooling_adds_axis(self):
        _, ids, _ = random_batch(4, 2, 3, 10, pooling=5)
        assert ids.shape == (4, 3, 5)

    def test_validation(self):
        with pytest.raises(ValueError):
            random_batch(0, 13, 26, 100)


class TestLoaders:
    def make(self, n=20):
        rng = np.random.default_rng(0)
        return (
            rng.standard_normal((n, 3)),
            rng.integers(0, 5, (n, 2)),
            rng.integers(0, 2, n).astype(float),
        )

    def test_batch_iterator_covers_data(self):
        dense, ids, labels = self.make(20)
        it = BatchIterator(dense, ids, labels, batch_size=5, shuffle=False)
        batches = list(it)
        assert len(batches) == 4
        np.testing.assert_array_equal(
            np.concatenate([b[2] for b in batches]), labels
        )

    def test_drops_partial_batch(self):
        dense, ids, labels = self.make(22)
        it = BatchIterator(dense, ids, labels, batch_size=5)
        assert len(it) == 4

    def test_shuffle_changes_order_but_not_content(self):
        dense, ids, labels = self.make(20)
        it = BatchIterator(dense, ids, labels, batch_size=20, seed=3)
        (got,) = [b[2] for b in it]
        assert sorted(got) == sorted(labels)

    def test_epochs_reshuffle(self):
        dense, ids, labels = self.make(64)
        it = BatchIterator(dense, ids, labels, batch_size=64, seed=3)
        first = next(iter(it))[0]
        second = next(iter(it))[0]
        assert not np.array_equal(first, second)

    def test_length_mismatch_raises(self):
        dense, ids, labels = self.make(20)
        with pytest.raises(ValueError, match="mismatch"):
            BatchIterator(dense[:10], ids, labels, batch_size=2)

    def test_bad_batch_size(self):
        dense, ids, labels = self.make(20)
        with pytest.raises(ValueError):
            BatchIterator(dense, ids, labels, batch_size=0)
        with pytest.raises(ValueError):
            BatchIterator(dense, ids, labels, batch_size=21)

    def test_train_eval_split(self):
        dense, ids, labels = self.make(20)
        (td, ti, tl), (ed, ei, el) = train_eval_split(
            dense, ids, labels, eval_fraction=0.25
        )
        assert len(tl) == 15 and len(el) == 5
        np.testing.assert_array_equal(np.concatenate([tl, el]), labels)

    def test_split_validation(self):
        dense, ids, labels = self.make(4)
        with pytest.raises(ValueError):
            train_eval_split(dense, ids, labels, eval_fraction=0.0)


class TestBatchIteratorState:
    """Checkpoint/restore of the mid-pass shuffle position (the data
    half of the crash/resume bit-identity guarantee)."""

    def make(self, n=60):
        rng = np.random.default_rng(0)
        return (
            rng.standard_normal((n, 3)),
            rng.integers(0, 5, (n, 2)),
            rng.integers(0, 2, n).astype(float),
        )

    def test_between_pass_state_round_trips(self):
        dense, ids, labels = self.make()
        a = BatchIterator(dense, ids, labels, batch_size=10, seed=4)
        first_pass = [b[2] for b in a]
        state = a.state_dict()
        b = BatchIterator(dense, ids, labels, batch_size=10, seed=4)
        b.load_state_dict(state)
        for x, y in zip([c[2] for c in a], [c[2] for c in b]):
            np.testing.assert_array_equal(x, y)
        assert len(first_pass) == 6

    def test_mid_pass_resume_replays_shuffle(self):
        dense, ids, labels = self.make()
        a = BatchIterator(dense, ids, labels, batch_size=10, seed=4)
        it = iter(a)
        seen = [next(it)[2] for _ in range(3)]
        state = a.state_dict()
        rest_a = [b[2] for b in it]
        b = BatchIterator(dense, ids, labels, batch_size=10, seed=4)
        b.load_state_dict(state)
        rest_b = [c[2] for c in b]
        assert len(rest_b) == len(rest_a) == 3
        for x, y in zip(rest_a, rest_b):
            np.testing.assert_array_equal(x, y)
        assert len(seen) == 3

    def test_state_is_json_serializable(self):
        import json

        dense, ids, labels = self.make()
        a = BatchIterator(dense, ids, labels, batch_size=10, seed=4)
        in_flight = iter(a)
        next(in_flight)
        text = json.dumps(a.state_dict())
        rest_a = [c[2] for c in in_flight]
        b = BatchIterator(dense, ids, labels, batch_size=10, seed=4)
        b.load_state_dict(json.loads(text))
        rest_b = [c[2] for c in b]
        assert len(rest_a) == len(rest_b) == 5
        for x, y in zip(rest_a, rest_b):
            np.testing.assert_array_equal(x, y)

    def test_bad_state_rejected(self):
        dense, ids, labels = self.make()
        it = BatchIterator(dense, ids, labels, batch_size=10, seed=4)
        with pytest.raises(ValueError, match="missing"):
            it.load_state_dict({"rng_state": {}})
        good = it.state_dict()
        with pytest.raises(ValueError, match="out of range"):
            it.load_state_dict({**good, "next_batch": 99})
        with pytest.raises(ValueError, match="in-flight"):
            it.load_state_dict(
                {**good, "pass_state": None, "next_batch": 2}
            )
