"""Smoke tests for the experiment framework and the light experiments.

Heavy training experiments (tables 2-6) run in the benchmark suite;
here we cover the registry/CLI machinery and the model-driven
experiments end to end.
"""

import json
import os
import subprocess
import sys

import numpy as np
import pytest

import repro
from repro.experiments import get_experiment, list_experiments
from repro.experiments.result import ExperimentResult, format_table
from repro.experiments.runner import main as cli_main

ALL_IDS = {
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "figure1",
    "figure5",
    "figure6",
    "figure9",
    "figure10",
    "figure11",
    "figure12",
    "figure13",
    "xlrm",
    "quantization",
    "e2e",
    "scaling",
    "serving",
    "serving_fleet",
    "tiered_serving",
    "checkpointing",
    "fault_tolerance",
    "model_freshness",
    "multi_task_ab",
}


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        ids = {exp_id for exp_id, _ in list_experiments()}
        assert len(ids) == 25
        assert ids == ALL_IDS

    def test_registry_lazy_imports_drivers(self):
        """Direct registry consumers see every driver without importing
        repro.experiments first (regression: the registry used to list
        only what the caller had already imported)."""
        src = os.path.dirname(os.path.dirname(repro.__file__))
        code = (
            "from repro.experiments.registry import "
            "get_experiment, list_experiments\n"
            f"assert len(list_experiments()) == {len(ALL_IDS)}\n"
            "try:\n"
            "    get_experiment('nope')\n"
            "except KeyError as exc:\n"
            "    assert 'e2e' in str(exc) and 'table4' in str(exc)\n"
            "else:\n"
            "    raise AssertionError('expected KeyError for unknown id')\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        subprocess.run(
            [sys.executable, "-c", code], check=True, env=env, timeout=120
        )

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            get_experiment("table99")

    def test_double_registration_rejected(self):
        from repro.experiments.registry import register

        with pytest.raises(ValueError, match="twice"):
            register("table1", "dup")(lambda fast=True: None)


class TestResultFormatting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 0.25]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(l) for l in lines)) == 1  # rectangular

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_render_and_save(self, tmp_path):
        result = ExperimentResult(
            exp_id="demo", title="T", body="B", paper_reference="P"
        )
        text = result.render()
        assert "demo" in text and "[paper] P" in text
        path = result.save(str(tmp_path))
        assert open(path).read().startswith("== demo")

    def test_save_writes_json_twin(self, tmp_path):
        result = ExperimentResult(
            exp_id="demo",
            title="T",
            body="B",
            data={"x": np.float64(1.5), "arr": np.arange(3)},
            paper_reference="P",
        )
        result.save(str(tmp_path))
        payload = json.loads((tmp_path / "demo.json").read_text())
        assert payload["data"] == {"x": 1.5, "arr": [0, 1, 2]}

    def test_json_round_trip(self):
        result = ExperimentResult(
            exp_id="demo",
            title="T",
            body="B",
            data={"speedup": np.float64(1.9), "values": (1, 2)},
            paper_reference="P",
        )
        back = ExperimentResult.from_json(result.to_json())
        assert back.exp_id == "demo"
        assert back.data == {"speedup": 1.9, "values": [1, 2]}
        assert back.render() == result.render()


class TestLightExperiments:
    @pytest.mark.parametrize(
        "exp_id",
        [
            "table1",
            "figure1",
            "figure5",
            "figure6",
            "figure10",
            "figure11",
            "figure12",
            "figure13",
            "quantization",
            "scaling",
            "e2e",
            "serving",
            "serving_fleet",
            "multi_task_ab",
        ],
    )
    def test_runs_and_produces_body(self, exp_id):
        result = get_experiment(exp_id)(fast=True)
        assert result.exp_id == exp_id
        assert len(result.body) > 40
        assert result.paper_reference

    def test_serving_headline(self):
        """Acceptance: past saturation the disaggregated tier wins p99."""
        result = get_experiment("serving")(fast=True)
        assert result.data["high_qps"]["p99_speedup_disaggregated"] > 1.5
        coloc = result.data["high_qps"]["placements"]["colocated"]
        assert 0.0 < coloc["cache"]["hit_rate"] < 1.0
        assert "embedding_comm" in coloc["breakdown_ms"]

    def test_serving_fleet_headline(self):
        """Hash routing's affinity concentrates the flash crowd on the
        hot replica; depth-aware p2c spreads it like round-robin."""
        result = get_experiment("serving_fleet")(fast=True)
        static = result.data["static"]

        def p99(router):
            return static[router]["placements"]["disaggregated"][
                "latency_ms"
            ]["p99"]

        assert p99("hash") > 1.2 * p99("round_robin")
        assert p99("p2c") < 1.1 * p99("round_robin")
        imb = static["hash"]["fleet"]["disaggregated"]["load_imbalance"]
        assert imb > 1.5
        # churn makes every fleet's caches re-learn the hot set
        hit = lambda arm: result.data[arm]["round_robin"]["placements"][
            "disaggregated"
        ]["cache"]["hit_rate"]
        assert hit("churn") < hit("static")

    def test_multi_task_ab_headline(self):
        """Acceptance: the DBMTL CVR AUC delta's CI excludes zero at
        the driver's default seeds, while CTR stays matched."""
        result = get_experiment("multi_task_ab")(fast=True)
        cvr = result.data["cvr_auc_delta"]
        assert cvr["excludes_zero"] is True
        assert cvr["mean_delta"] > 0
        assert result.data["ctr_auc_delta"]["excludes_zero"] is False
        assert result.data["ab"]["label_b"] == "dbmtl"

    def test_figure10_headline(self):
        result = get_experiment("figure10")(fast=True)
        assert result.data["max_speedup"] > 1.5

    def test_figure13_anchors(self):
        result = get_experiment("figure13")(fast=True)
        assert result.data["baseline_compute_ms"] == pytest.approx(29.4, rel=0.2)


class TestCLI:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table4" in out and "figure10" in out

    def test_run_single(self, capsys, tmp_path):
        assert cli_main(["run", "table1", "--save", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Recent generational upgrades" in out
        assert (tmp_path / "table1.txt").exists()
        assert (tmp_path / "table1.json").exists()

    def test_run_json_output(self, capsys):
        assert cli_main(["run", "table1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["exp_id"] == "table1"
        assert payload["body"]

    def test_run_unknown_experiment(self):
        with pytest.raises(KeyError):
            cli_main(["run", "nope"])
