"""Tests for cluster topology and SPTT peer geometry."""

import pytest

from repro.hardware import Cluster, LinkType


@pytest.fixture
def paper_example():
    """The 2-host, 2-GPU/host cluster from Figures 3/4/7."""
    return Cluster(num_hosts=2, gpus_per_host=2, generation="A100")


@pytest.fixture
def rack():
    return Cluster(num_hosts=8, gpus_per_host=8, generation="H100")


class TestGeometry:
    def test_world_size(self, rack):
        assert rack.world_size == 64
        assert len(rack) == 64

    def test_rank_to_host_mapping(self, rack):
        assert rack.host_of(0) == 0
        assert rack.host_of(7) == 0
        assert rack.host_of(8) == 1
        assert rack.host_of(63) == 7

    def test_local_rank(self, rack):
        assert rack.local_rank_of(0) == 0
        assert rack.local_rank_of(9) == 1
        assert rack.local_rank_of(63) == 7

    def test_gpu_lookup_consistent(self, rack):
        for rank in range(rack.world_size):
            gpu = rack.gpu(rank)
            assert gpu.global_rank == rank
            assert gpu.host_id == rack.host_of(rank)
            assert gpu.local_rank == rack.local_rank_of(rank)

    def test_iteration_covers_all_ranks_in_order(self, rack):
        assert [g.global_rank for g in rack] == list(range(64))

    def test_ranks_on_host(self, rack):
        assert rack.ranks_on_host(0) == tuple(range(8))
        assert rack.ranks_on_host(7) == tuple(range(56, 64))

    def test_invalid_rank_raises(self, rack):
        with pytest.raises(IndexError):
            rack.host_of(64)
        with pytest.raises(IndexError):
            rack.gpu(-1)

    def test_invalid_host_raises(self, rack):
        with pytest.raises(IndexError):
            rack.ranks_on_host(8)

    @pytest.mark.parametrize("hosts,gpus", [(0, 8), (8, 0), (-1, 8)])
    def test_invalid_shape_raises(self, hosts, gpus):
        with pytest.raises(ValueError):
            Cluster(num_hosts=hosts, gpus_per_host=gpus)


class TestLinks:
    def test_link_classification(self, paper_example):
        c = paper_example
        assert c.link_type(0, 0) is LinkType.LOCAL
        assert c.link_type(0, 1) is LinkType.SCALE_UP
        assert c.link_type(0, 2) is LinkType.SCALE_OUT
        assert c.link_type(1, 3) is LinkType.SCALE_OUT

    def test_link_bandwidth_ordering(self, paper_example):
        c = paper_example
        local = c.link_bandwidth(0, 0)
        nvlink = c.link_bandwidth(0, 1)
        nic = c.link_bandwidth(0, 2)
        assert local > nvlink > nic

    def test_link_symmetric(self, rack):
        assert rack.link_type(3, 12) == rack.link_type(12, 3)


class TestPeerGeometry:
    """Peer math from §3.1.1: peers of g are all g' with g' % L == g % L."""

    def test_paper_example_peers(self, paper_example):
        assert paper_example.peers_of(0) == (0, 2)
        assert paper_example.peers_of(1) == (1, 3)
        assert paper_example.peers_of(2) == (0, 2)
        assert paper_example.peers_of(3) == (1, 3)

    def test_peer_groups_partition_cluster(self, rack):
        groups = rack.peer_groups()
        assert len(groups) == rack.gpus_per_host
        seen = sorted(r for g in groups for r in g)
        assert seen == list(range(rack.world_size))

    def test_peer_group_one_rank_per_host(self, rack):
        for group in rack.peer_groups():
            hosts = [rack.host_of(r) for r in group]
            assert sorted(hosts) == list(range(rack.num_hosts))
            assert len(set(rack.local_rank_of(r) for r in group)) == 1

    def test_peers_include_self(self, rack):
        for rank in range(rack.world_size):
            assert rank in rack.peers_of(rank)

    def test_peer_group_size_is_num_hosts(self, rack):
        for rank in range(rack.world_size):
            assert len(rack.peers_of(rank)) == rack.num_hosts
