"""Crash/resume equivalence and checkpoint-format tests.

The core claim: a training run interrupted mid-epoch and resumed from a
checkpoint in a fresh process is **bit-identical** — loss history,
weights, optimizer state, eval AUC — to a run that never stopped,
across both sparse gradient modes and both dense optimizers.  Plus the
failure taxonomy (truncated payloads, version bumps, geometry
mismatches, missing optimizer state all raise typed errors), periodic
auto-save retention, elastic restore, and serving warm-start.
"""

import json
import os

import numpy as np
import pytest

from repro.api import (
    CheckpointSpec,
    ClusterSpec,
    DataSpec,
    ModelSpec,
    RunSpec,
    ServeSpec,
    Session,
    SpecError,
    TrainSpec,
)
from repro.checkpoint import (
    FORMAT_VERSION,
    MANIFEST_NAME,
    CheckpointCorruptError,
    CheckpointManager,
    CheckpointMismatchError,
    CheckpointNotFoundError,
    CheckpointVersionError,
    checkpoint_step,
    hottest_rows,
    load_training_checkpoint,
    plan_elastic_restore,
    read_arrays,
    read_manifest,
    save_training_checkpoint,
    write_checkpoint,
)
from repro.data import (
    BatchIterator,
    SyntheticCriteoConfig,
    SyntheticCriteoDataset,
)
from repro.hardware import Cluster
from repro.models import DLRM, tiny_table_configs
from repro.models.configs import DenseArch
from repro.nn import Adagrad, Adam, Parameter, RowwiseAdagrad, SGD
from repro.serving import (
    InferenceService,
    LRUEmbeddingCache,
    MicroBatcher,
    Placement,
    RequestStream,
    ServingModel,
    WorkloadConfig,
)
from repro.sim import SimCluster
from repro.training import TrainConfig, Trainer

NUM_DENSE = 4
NUM_SPARSE = 6
CARDINALITY = 32
DIM = 8
ARCH = DenseArch(embedding_dim=DIM, bottom_mlp=(16,), top_mlp=(16,))


@pytest.fixture(scope="module")
def data():
    cfg = SyntheticCriteoConfig(
        num_dense=NUM_DENSE, num_sparse=NUM_SPARSE, cardinality=CARDINALITY
    )
    ds = SyntheticCriteoDataset(cfg, seed=0)
    dense, ids, labels = ds.sample(1000, seed=1)
    return (dense[:800], ids[:800], labels[:800]), (
        dense[800:],
        ids[800:],
        labels[800:],
    )


def make_model(init_seed=5):
    return DLRM(
        NUM_DENSE,
        tiny_table_configs(NUM_SPARSE, CARDINALITY, DIM),
        ARCH,
        rng=np.random.default_rng(init_seed),
    )


def make_trainer(model, **overrides):
    cfg = dict(batch_size=64, epochs=2, seed=3)
    cfg.update(overrides)
    return Trainer(model, TrainConfig(**cfg))


class _Crash(Exception):
    pass


def assert_same_optimizer_state(opt_a, opt_b):
    sa, sb = opt_a.state_dict(), opt_b.state_dict()
    assert sa["lr"] == sb["lr"]
    assert sa["step_count"] == sb["step_count"]
    assert set(sa["slots"]) == set(sb["slots"])
    for slot in sa["slots"]:
        assert set(sa["slots"][slot]) == set(sb["slots"][slot])
        for key in sa["slots"][slot]:
            np.testing.assert_array_equal(
                sa["slots"][slot][key], sb["slots"][slot][key]
            )


# ----------------------------------------------------------------------
class TestCrashResumeEquivalence:
    @pytest.mark.parametrize("sparse_grad_mode", ["rowwise", "dense"])
    @pytest.mark.parametrize("dense_optimizer", ["adam", "sgd"])
    def test_resume_is_bit_identical(
        self, data, tmp_path, sparse_grad_mode, dense_optimizer
    ):
        """Train -> crash mid-epoch -> restore into fresh objects ->
        resumed run equals the uninterrupted run bit for bit."""
        (td, ti, tl), (ed, ei, el) = data
        overrides = dict(
            sparse_grad_mode=sparse_grad_mode,
            dense_optimizer=dense_optimizer,
        )

        ref_model = make_model()
        ref_trainer = make_trainer(ref_model, **overrides)
        ref_losses = ref_trainer.fit(td, ti, tl)
        ref_eval = ref_trainer.evaluate(ed, ei, el)

        crash_model = make_model()
        crash_trainer = make_trainer(crash_model, **overrides)
        path = str(tmp_path / "mid")

        def hook(tr):
            # Step 17 is mid-epoch-2 (12 batches per epoch).
            if tr.global_step == 17:
                save_training_checkpoint(path, crash_model, tr)
                raise _Crash

        with pytest.raises(_Crash):
            crash_trainer.fit(td, ti, tl, on_step_end=hook)

        # Fresh process state: different init proves the restore, not
        # the constructor, produces the weights.
        resumed_model = make_model(init_seed=999)
        resumed_trainer = make_trainer(resumed_model, **overrides)
        load_training_checkpoint(path, resumed_model, resumed_trainer)
        resumed_losses = resumed_trainer.fit(td, ti, tl)
        resumed_eval = resumed_trainer.evaluate(ed, ei, el)

        assert resumed_losses == ref_losses
        assert resumed_trainer.loss_history == ref_trainer.loss_history
        assert resumed_eval.auc == ref_eval.auc
        assert resumed_eval.log_loss == ref_eval.log_loss
        for (name_a, pa), (name_b, pb) in zip(
            ref_model.named_parameters(), resumed_model.named_parameters()
        ):
            assert name_a == name_b
            np.testing.assert_array_equal(pa.data, pb.data)
        assert_same_optimizer_state(
            ref_trainer.dense_opt, resumed_trainer.dense_opt
        )
        assert_same_optimizer_state(
            ref_trainer.sparse_opt, resumed_trainer.sparse_opt
        )

    def test_resume_preserves_fused_embedding_aliasing(self, data, tmp_path):
        (td, ti, tl), _ = data
        model = make_model()
        trainer = make_trainer(model, epochs=1)
        trainer.fit(td, ti, tl)
        path = save_training_checkpoint(str(tmp_path / "ck"), model, trainer)
        fresh = make_model(init_seed=11)
        load_training_checkpoint(path, fresh)
        stacked = fresh.embeddings._stacked
        for table in fresh.embeddings.tables:
            assert table.weight.data.base is stacked

    def test_scalar_accumulator_round_trips(self, data, tmp_path):
        """RowwiseAdagrad's torchrec-style scalar mode (one momentum
        scalar per row) restores exactly too."""
        (td, ti, tl), _ = data
        model = make_model()
        trainer = make_trainer(model, epochs=1)
        trainer.sparse_opt = RowwiseAdagrad(
            model.sparse_parameters(), lr=0.03, accumulator="scalar"
        )
        trainer.fit(td, ti, tl)
        path = save_training_checkpoint(str(tmp_path / "sc"), model, trainer)
        fresh_model = make_model(init_seed=8)
        fresh_trainer = make_trainer(fresh_model, epochs=1)
        fresh_trainer.sparse_opt = RowwiseAdagrad(
            fresh_model.sparse_parameters(), lr=0.03, accumulator="scalar"
        )
        load_training_checkpoint(path, fresh_model, fresh_trainer)
        assert_same_optimizer_state(trainer.sparse_opt, fresh_trainer.sparse_opt)

    def test_mid_epoch_iterator_state_round_trips(self, data):
        """BatchIterator resumes the exact shuffle order mid-pass."""
        (td, ti, tl), _ = data
        a = BatchIterator(td, ti, tl, batch_size=64, seed=9)
        seen = []
        state = None
        for k, (_, _, labels) in enumerate(a):
            seen.append(labels)
            if k == 4:
                state = a.state_dict()
        b = BatchIterator(td, ti, tl, batch_size=64, seed=9)
        b.load_state_dict(json.loads(json.dumps(state)))
        rest = [labels for _, _, labels in b]
        assert len(rest) == len(seen) - 5
        for x, y in zip(seen[5:], rest):
            np.testing.assert_array_equal(x, y)
        # Next pass after resume matches the uninterrupted iterator's.
        np.testing.assert_array_equal(
            next(iter(a))[2], next(iter(b))[2]
        )


# ----------------------------------------------------------------------
class TestFailureTaxonomy:
    @pytest.fixture
    def saved(self, data, tmp_path):
        (td, ti, tl), _ = data
        model = make_model()
        trainer = make_trainer(model, epochs=1)
        trainer.fit(td, ti, tl)
        path = save_training_checkpoint(str(tmp_path / "ok"), model, trainer)
        return path

    def test_missing_checkpoint(self, tmp_path):
        with pytest.raises(CheckpointNotFoundError, match="missing"):
            read_manifest(str(tmp_path / "nope"))

    def test_truncated_payload(self, saved):
        manifest = read_manifest(saved)
        entry = next(iter(manifest["arrays"].values()))
        payload = os.path.join(saved, entry["file"])
        with open(payload, "rb") as fh:
            raw = fh.read()
        with open(payload, "wb") as fh:
            fh.write(raw[: len(raw) // 2])
        with pytest.raises(CheckpointCorruptError, match="truncated"):
            read_arrays(saved)
        with pytest.raises(CheckpointCorruptError):
            load_training_checkpoint(saved, make_model())

    def test_bit_flipped_payload(self, saved):
        manifest = read_manifest(saved)
        entry = next(iter(manifest["arrays"].values()))
        payload = os.path.join(saved, entry["file"])
        with open(payload, "r+b") as fh:
            fh.seek(entry["nbytes"] - 1)
            last = fh.read(1)
            fh.seek(entry["nbytes"] - 1)
            fh.write(bytes([last[0] ^ 0xFF]))
        with pytest.raises(CheckpointCorruptError, match="corrupt"):
            read_arrays(saved)

    def test_version_bump_rejected(self, saved):
        manifest_path = os.path.join(saved, MANIFEST_NAME)
        with open(manifest_path) as fh:
            manifest = json.load(fh)
        manifest["version"] = FORMAT_VERSION + 1
        with open(manifest_path, "w") as fh:
            json.dump(manifest, fh)
        with pytest.raises(CheckpointVersionError, match="version"):
            read_manifest(saved)

    def test_garbage_manifest(self, saved):
        with open(os.path.join(saved, MANIFEST_NAME), "w") as fh:
            fh.write("{not json")
        with pytest.raises(CheckpointCorruptError, match="JSON"):
            read_manifest(saved)

    def test_table_cardinality_mismatch(self, saved):
        other = DLRM(
            NUM_DENSE,
            tiny_table_configs(NUM_SPARSE, CARDINALITY * 2, DIM),
            ARCH,
            rng=np.random.default_rng(0),
        )
        with pytest.raises(CheckpointMismatchError, match="table mismatch|cardinalities"):
            load_training_checkpoint(saved, other)

    def test_table_count_mismatch(self, saved):
        other = DLRM(
            NUM_DENSE,
            tiny_table_configs(NUM_SPARSE + 2, CARDINALITY, DIM),
            ARCH,
            rng=np.random.default_rng(0),
        )
        with pytest.raises(CheckpointMismatchError, match="tables"):
            load_training_checkpoint(saved, other)

    def test_missing_optimizer_state(self, data, tmp_path):
        """A bare-model checkpoint cannot silently resume training."""
        model = make_model()
        path = save_training_checkpoint(str(tmp_path / "bare"), model)
        fresh = make_model()
        trainer = make_trainer(fresh)
        with pytest.raises(CheckpointMismatchError, match="no trainer"):
            load_training_checkpoint(path, fresh, trainer)
        # Model-only restore still works.
        load_training_checkpoint(path, fresh)

    def test_failed_load_leaves_model_untouched(self, saved):
        """A mismatched load must not half-mutate the model (shape
        validation happens before any copy)."""
        other = DLRM(
            NUM_DENSE,
            tiny_table_configs(NUM_SPARSE, CARDINALITY, DIM),
            DenseArch(embedding_dim=DIM, bottom_mlp=(24,), top_mlp=(16,)),
            rng=np.random.default_rng(1),
        )
        before = {n: p.data.copy() for n, p in other.named_parameters()}
        with pytest.raises(CheckpointMismatchError):
            load_training_checkpoint(saved, other)
        for name, p in other.named_parameters():
            np.testing.assert_array_equal(p.data, before[name])

    def test_config_mismatch_rejected(self, saved):
        """Resuming under a different training protocol is refused —
        and the refusal leaves both model and trainer untouched (the
        trainer is validated before the model is mutated)."""
        fresh = make_model()
        trainer = make_trainer(fresh, batch_size=32)
        before = {n: p.data.copy() for n, p in fresh.named_parameters()}
        with pytest.raises(CheckpointMismatchError, match="batch_size"):
            load_training_checkpoint(saved, fresh, trainer)
        for name, p in fresh.named_parameters():
            np.testing.assert_array_equal(p.data, before[name])
        assert trainer.global_step == 0
        assert trainer.dense_opt.state_dict()["slots"]["m"] == {}

    def test_optimizer_type_mismatch_rejected(self, data):
        (td, ti, tl), _ = data
        params = [Parameter(np.zeros((4, 2)), name="p")]
        adam = Adam(params, lr=0.1)
        sgd = SGD(params, lr=0.1)
        with pytest.raises(ValueError, match="Adam"):
            sgd.load_state_dict(adam.state_dict())
        ada = Adagrad(params, lr=0.1)
        row = RowwiseAdagrad(params, lr=0.1, accumulator="scalar")
        with pytest.raises(ValueError, match="config mismatch"):
            row.load_state_dict(
                RowwiseAdagrad(params, lr=0.1).state_dict()
            )
        assert ada.state_dict()["type"] == "Adagrad"


# ----------------------------------------------------------------------
class TestManagerAndElastic:
    def test_manager_cadence_and_retention(self, data, tmp_path):
        (td, ti, tl), _ = data
        model = make_model()
        trainer = make_trainer(model, epochs=1)
        manager = CheckpointManager(
            str(tmp_path / "runs"), every_steps=3, keep_last=2
        )
        trainer.fit(
            td, ti, tl, on_step_end=lambda tr: manager.maybe_save(model, tr)
        )
        # 12 steps, cadence 3 -> saves at 3,6,9,12; keep_last 2 -> 9,12.
        assert manager.saved_steps() == [9, 12]
        assert manager.latest().endswith("step_00000012")
        assert checkpoint_step(manager.latest()) == 12

    def test_elastic_restore_different_cluster(self, data, tmp_path):
        (td, ti, tl), _ = data
        model = make_model()
        trainer = make_trainer(model, epochs=1)
        trainer.fit(td, ti, tl)
        spec = RunSpec(
            name="elastic",
            cluster=ClusterSpec(2, 2),
            data=DataSpec(
                num_sparse=NUM_SPARSE,
                cardinality=CARDINALITY,
                num_samples=1000,
            ),
            model=ModelSpec(
                family="dlrm",
                variant="flat",
                embedding_dim=DIM,
                bottom_mlp=(16,),
                top_mlp=(16,),
            ),
            train=TrainSpec(mode="single", batch_size=64, epochs=2),
        )
        path = save_training_checkpoint(
            str(tmp_path / "el"), model, trainer, spec=spec
        )
        plan = plan_elastic_restore(path, Cluster(4, 2, "A100"))
        assert plan.source_world == 4
        assert plan.target_world == 8
        # Partition validation: every feature in exactly one tower.
        assert plan.partition.num_features == NUM_SPARSE
        assert plan.partition.num_towers == 4
        # Sharding plan covers every table (validate_coverage raises
        # otherwise) and the migration is priced.
        plan.plan.validate_coverage(plan.tables)
        assert plan.migration.seconds > 0
        assert 0 < plan.moved_bytes <= plan.total_bytes
        summary = plan.summary()
        assert summary["partition_source"] == "contiguous"
        json.dumps(summary)  # JSON-able end to end

    def test_elastic_same_world_moves_nothing(self, data, tmp_path):
        (td, ti, tl), _ = data
        model = make_model()
        trainer = make_trainer(model, epochs=1)
        trainer.fit(td, ti, tl)
        spec = RunSpec(
            name="same",
            cluster=ClusterSpec(2, 2),
            data=DataSpec(
                num_sparse=NUM_SPARSE,
                cardinality=CARDINALITY,
                num_samples=1000,
            ),
            train=None,
            perf=None,
            serve=None,
            partition=None,
            model=None,
        )
        path = save_training_checkpoint(
            str(tmp_path / "sw"), model, trainer, spec=spec
        )
        plan = plan_elastic_restore(path, Cluster(2, 2, "A100"))
        assert plan.moved_bytes == 0
        assert plan.moved_fraction == 0.0

    def test_hottest_rows_ranked_and_bounded(self, data, tmp_path):
        (td, ti, tl), _ = data
        model = make_model()
        trainer = make_trainer(model, epochs=1)
        trainer.fit(td, ti, tl)
        path = save_training_checkpoint(str(tmp_path / "hot"), model, trainer)
        rows = hottest_rows(path, 40)
        assert len(rows) == 40
        assert len(np.unique(rows)) == 40
        total_rows = NUM_SPARSE * CARDINALITY
        assert rows.min() >= 0 and rows.max() < total_rows
        assert len(hottest_rows(path, 0)) == 0
        everything = hottest_rows(path, 10**6)
        assert len(everything) <= total_rows


# ----------------------------------------------------------------------
def _session_spec(tmp, **checkpoint_kwargs):
    return RunSpec(
        name="ckpt-session",
        cluster=ClusterSpec(2, 2),
        data=DataSpec(
            num_sparse=NUM_SPARSE,
            cardinality=CARDINALITY,
            num_samples=1200,
            num_blocks=2,
        ),
        model=ModelSpec(
            family="dlrm",
            variant="flat",
            embedding_dim=DIM,
            bottom_mlp=(16,),
            top_mlp=(16,),
        ),
        train=TrainSpec(mode="single", batch_size=64, epochs=2),
        checkpoint=CheckpointSpec(directory=str(tmp), **checkpoint_kwargs),
    )


class TestSessionIntegration:
    def test_autosave_resume_and_run_summary(self, tmp_path):
        spec = _session_spec(tmp_path, save_every_steps=4)
        ref = Session(spec).train()

        # Resume from a periodic save in a brand-new session.
        manager = CheckpointManager(
            os.path.join(str(tmp_path), "ckpt-session"), 4, 2
        )
        latest = manager.latest()
        assert latest is not None
        resumed_session = Session(
            spec.replace(
                checkpoint=spec.checkpoint.replace(
                    save_every_steps=0, resume_from=latest
                )
            )
        )
        art = resumed_session.resume()
        assert art.epoch_losses == ref.epoch_losses
        assert art.eval_result.auc == ref.eval_result.auc
        result = resumed_session.run()
        assert result.checkpoint["resumed_from"] == latest
        assert "resumed from" in result.render()

    def test_save_checkpoint_explicit_path(self, tmp_path):
        spec = _session_spec(tmp_path)
        session = Session(spec)
        path = session.save_checkpoint(str(tmp_path / "explicit"))
        meta = read_manifest(path)["metadata"]
        assert meta["kind"] == "training"
        assert meta["spec"]["name"] == "ckpt-session"
        assert [t["name"] for t in meta["tables"]] == [
            f"sparse_{i}" for i in range(NUM_SPARSE)
        ]

    def test_resume_without_resume_from_is_typed_error(self, tmp_path):
        spec = _session_spec(tmp_path)
        with pytest.raises(SpecError, match="resume_from"):
            Session(spec).resume()

    def test_elastic_session_stage(self, tmp_path):
        spec = _session_spec(tmp_path)
        path = Session(spec).save_checkpoint(str(tmp_path / "src"))
        bigger = spec.replace(
            cluster=ClusterSpec(4, 2),
            checkpoint=spec.checkpoint.replace(resume_from=path),
        )
        session = Session(bigger)
        plan = session.elastic_plan()
        assert plan.source_world == 4 and plan.target_world == 8
        result = session.run()
        assert result.checkpoint["elastic"]["target_world"] == 8
        assert "elastic restore" in result.render()

    def test_resume_on_changed_data_section_refused(self, tmp_path):
        """A resumed run over different data cannot claim bit-identity;
        the session refuses instead of silently drifting."""
        spec = _session_spec(tmp_path)
        path = Session(spec).save_checkpoint(str(tmp_path / "src-data"))
        changed = spec.replace(
            data=spec.data.replace(num_samples=2400),
            checkpoint=spec.checkpoint.replace(resume_from=path),
        )
        with pytest.raises(CheckpointMismatchError, match="data section"):
            Session(changed).resume()

    def test_checkpoint_spec_validation(self, tmp_path):
        with pytest.raises(SpecError, match="train or serve"):
            RunSpec(
                name="bad",
                perf=None,
                data=DataSpec(),
                checkpoint=CheckpointSpec(),
            )
        with pytest.raises(SpecError, match="save_every_steps"):
            CheckpointSpec(save_every_steps=-1)
        with pytest.raises(SpecError, match="keep_last"):
            CheckpointSpec(keep_last=0)
        spec = _session_spec(tmp_path, save_every_steps=7)
        round_tripped = RunSpec.from_json(spec.to_json())
        assert round_tripped == spec


class TestServingWarmStart:
    def test_prefill_and_warm_start(self, data, tmp_path):
        (td, ti, tl), _ = data
        model = make_model()
        trainer = make_trainer(model, epochs=1)
        trainer.fit(td, ti, tl)
        path = save_training_checkpoint(str(tmp_path / "ws"), model, trainer)

        cache = LRUEmbeddingCache(capacity_rows=32)
        sim = SimCluster(Cluster(2, 2, "A100"))
        service = InferenceService(
            sim,
            ServingModel.from_trained(model),
            Placement("colocated"),
            MicroBatcher(16, 1e-3),
            cache,
        )
        seeded = service.warm_start_from_checkpoint(path)
        assert seeded == 32
        assert len(cache) == 32
        # Prefill never pollutes the accounting.
        assert cache.stats.lookups == 0
        # The hottest row survived admission ordering (most-recent end).
        hot = hottest_rows(path, 32)
        hits, _ = cache.lookup(np.asarray([hot[0]]))
        assert hits == 1

        requests = RequestStream(
            WorkloadConfig(
                qps=50_000.0,
                num_requests=200,
                num_lookups=model.num_sparse,
                key_space=NUM_SPARSE * CARDINALITY,
                skew=1.0,
                seed=0,
            )
        ).generate()
        report = service.serve(requests)
        assert report.cache_hits > 0

    def test_capacity_zero_cache_stays_cold(self, data, tmp_path):
        (td, ti, tl), _ = data
        model = make_model()
        trainer = make_trainer(model, epochs=1)
        trainer.fit(td, ti, tl)
        path = save_training_checkpoint(str(tmp_path / "z"), model, trainer)
        sim = SimCluster(Cluster(2, 2, "A100"))
        service = InferenceService(
            sim,
            ServingModel.from_trained(model),
            Placement("colocated"),
            MicroBatcher(16, 1e-3),
            LRUEmbeddingCache(0),
        )
        assert service.warm_start_from_checkpoint(path) == 0


# ----------------------------------------------------------------------
class TestFormatPrimitives:
    def test_write_read_round_trip(self, tmp_path):
        arrays = {
            "a/one": np.arange(6, dtype=np.float64).reshape(2, 3),
            "b/two": np.arange(4, dtype=np.int64),
        }
        meta = {"kind": "raw", "note": "round trip"}
        path = write_checkpoint(str(tmp_path / "raw"), arrays, meta)
        manifest = read_manifest(path)
        assert manifest["metadata"] == meta
        loaded = read_arrays(path, manifest)
        assert set(loaded) == set(arrays)
        for key in arrays:
            np.testing.assert_array_equal(loaded[key], arrays[key])
            assert loaded[key].dtype == arrays[key].dtype

    def test_unjsonable_metadata_fails_before_manifest(self, tmp_path):
        path = str(tmp_path / "bad")
        with pytest.raises(TypeError):
            write_checkpoint(path, {}, {"oops": object()})
        assert not os.path.exists(os.path.join(path, MANIFEST_NAME))

    def test_overwrite_is_atomic(self, tmp_path):
        path = str(tmp_path / "atomic")
        write_checkpoint(path, {"x": np.ones(3)}, {"v": 1})
        write_checkpoint(path, {"x": np.zeros(3)}, {"v": 2})
        assert read_manifest(path)["metadata"]["v"] == 2
        np.testing.assert_array_equal(read_arrays(path)["x"], np.zeros(3))
        # No staging/trash leftovers after a clean overwrite.
        assert sorted(os.listdir(str(tmp_path))) == ["atomic"]

    def test_crashed_resave_preserves_old_checkpoint(
        self, tmp_path, monkeypatch
    ):
        """Killing a re-save before the directory swap leaves the
        previous checkpoint fully loadable (payloads are never
        overwritten in place)."""
        import repro.checkpoint.format as fmt

        path = str(tmp_path / "durable")
        write_checkpoint(path, {"x": np.ones(3)}, {"v": 1})

        def crash(src, dst):
            raise OSError("simulated crash before swap")

        monkeypatch.setattr(fmt.os, "rename", crash)
        with pytest.raises(OSError, match="simulated"):
            write_checkpoint(path, {"x": np.zeros(3)}, {"v": 2})
        monkeypatch.undo()
        assert read_manifest(path)["metadata"]["v"] == 1
        np.testing.assert_array_equal(read_arrays(path)["x"], np.ones(3))
        # A stale staging dir from the crash does not block the retry.
        write_checkpoint(path, {"x": np.zeros(3)}, {"v": 2})
        assert read_manifest(path)["metadata"]["v"] == 2
