"""Dense-vs-rowwise equivalence suite (the tentpole's hard constraint).

Training with ``sparse_grad_mode="rowwise"`` must reproduce the dense
reference exactly: identical loss history, identical final weights,
identical Adagrad accumulator state, identical eval AUC — across
seeds, pooling factors, duplicate-heavy id batches, and multi-epoch
runs.  The row-wise path preserves the dense path's per-row summation
order (sequential ``np.add.at``) and the elementwise accumulator is
arithmetically the dense one restricted to touched rows, so the
tolerance here is essentially bitwise (1e-12 guard for platform
libm differences).
"""

import dataclasses

import numpy as np
import pytest

from repro.data import random_batch, train_eval_split
from repro.models import DLRM, DMTDLRM, tiny_table_configs
from repro.models.configs import tiny_dlrm_arch
from repro.core.partition import FeaturePartition
from repro.nn import RowwiseAdagrad
from repro.training import TrainConfig, Trainer

DENSE, F, N, ROWS = 4, 6, 8, 32

TOL = dict(rtol=0.0, atol=1e-12)


def make_data(seed, n=512, pooling=1, cardinality=ROWS, duplicate_heavy=False):
    rng = np.random.default_rng(seed)
    dense, ids, labels = random_batch(
        n, DENSE, F, cardinality, pooling=pooling, rng=rng
    )
    if duplicate_heavy:
        # Zipf-like collapse onto a handful of hot rows: many duplicate
        # ids per batch and per bag, the worst case for compaction.
        ids = np.minimum(ids, rng.integers(0, 4, size=ids.shape))
    return train_eval_split(dense, ids, labels, eval_fraction=0.25)


def make_model(seed, pooling=1):
    tables = [
        dataclasses.replace(c, pooling=pooling)
        for c in tiny_table_configs(F, ROWS, N)
    ]
    return DLRM(DENSE, tables, tiny_dlrm_arch(N), rng=np.random.default_rng(seed))


def run_pair(config_kwargs, data_kwargs, model_seed=11):
    """Train twins under dense and rowwise modes; return both trainers
    plus the shared eval split."""
    (td, ti, tl), (ed, ei, el) = make_data(**data_kwargs)
    trainers = {}
    for mode in ("dense", "rowwise"):
        model = make_model(model_seed, pooling=data_kwargs.get("pooling", 1))
        trainer = Trainer(
            model, TrainConfig(sparse_grad_mode=mode, **config_kwargs)
        )
        trainer.fit(td, ti, tl)
        trainers[mode] = trainer
    return trainers["dense"], trainers["rowwise"], (ed, ei, el)


def assert_equivalent(dense_tr, row_tr, eval_data):
    np.testing.assert_allclose(
        dense_tr.loss_history, row_tr.loss_history, **TOL
    )
    d_params = dict(dense_tr.model.named_parameters())
    for name, p in row_tr.model.named_parameters():
        np.testing.assert_allclose(
            p.data, d_params[name].data, err_msg=name, **TOL
        )
    d_acc, r_acc = dense_tr.sparse_opt._accum, row_tr.sparse_opt._accum
    assert set(d_acc) == set(r_acc)
    for idx in d_acc:
        np.testing.assert_allclose(
            r_acc[idx], d_acc[idx], err_msg=f"accum[{idx}]", **TOL
        )
    e_dense = dense_tr.evaluate(*eval_data)
    e_row = row_tr.evaluate(*eval_data)
    assert e_row.auc == pytest.approx(e_dense.auc, abs=1e-12)
    assert e_row.log_loss == pytest.approx(e_dense.log_loss, abs=1e-12)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_equivalence_across_seeds(seed):
    dense_tr, row_tr, ev = run_pair(
        {"batch_size": 64, "epochs": 1, "seed": seed},
        {"seed": seed},
        model_seed=seed + 11,
    )
    assert_equivalent(dense_tr, row_tr, ev)


@pytest.mark.parametrize("pooling", [1, 3])
def test_equivalence_across_pooling(pooling):
    dense_tr, row_tr, ev = run_pair(
        {"batch_size": 64, "epochs": 1, "seed": 4},
        {"seed": 4, "pooling": pooling},
    )
    assert_equivalent(dense_tr, row_tr, ev)


def test_equivalence_duplicate_heavy_batches():
    dense_tr, row_tr, ev = run_pair(
        {"batch_size": 32, "epochs": 1, "seed": 5},
        {"seed": 5, "pooling": 4, "duplicate_heavy": True},
    )
    assert_equivalent(dense_tr, row_tr, ev)


def test_equivalence_multi_epoch():
    dense_tr, row_tr, ev = run_pair(
        {"batch_size": 64, "epochs": 3, "seed": 6},
        {"seed": 6},
    )
    assert len(row_tr.loss_history) == 3 * (384 // 64)
    assert_equivalent(dense_tr, row_tr, ev)


def test_equivalence_dmt_model_with_towers():
    """The knob reaches embeddings nested inside DMT models too."""
    (td, ti, tl), (ed, ei, el) = make_data(seed=7)
    partition = FeaturePartition.contiguous(F, 2)
    trainers = {}
    for mode in ("dense", "rowwise"):
        model = DMTDLRM(
            DENSE,
            tiny_table_configs(F, ROWS, N),
            partition,
            tiny_dlrm_arch(N),
            tower_dim=4,
            c=1,
            p=0,
            rng=np.random.default_rng(21),
        )
        trainer = Trainer(
            model,
            TrainConfig(batch_size=64, epochs=1, seed=7, sparse_grad_mode=mode),
        )
        trainer.fit(td, ti, tl)
        trainers[mode] = trainer
    assert_equivalent(trainers["dense"], trainers["rowwise"], (ed, ei, el))


def test_rowwise_is_the_default():
    model = make_model(1)
    trainer = Trainer(model, TrainConfig(batch_size=32))
    assert isinstance(trainer.sparse_opt, RowwiseAdagrad)
    assert model.embeddings.sparse_grad_mode == "rowwise"
