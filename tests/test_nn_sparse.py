"""Tests for the row-wise sparse gradient path.

Covers the compact :class:`RowwiseGrad` representation, the Parameter
dense/row-wise gradient plumbing, :class:`RowwiseAdagrad`, the fused
embedding collection internals, and the ``WarmupDecaySchedule``
``decay_start=0`` regression.
"""

import numpy as np
import pytest

from repro.nn import (
    Adagrad,
    EmbeddingBagCollection,
    EmbeddingTable,
    Parameter,
    RowwiseAdagrad,
    RowwiseGrad,
    TableConfig,
    set_sparse_grad_mode,
)
from repro.nn.optim import WarmupDecaySchedule


@pytest.fixture
def rng():
    return np.random.default_rng(3)


class TestRowwiseGrad:
    def test_from_pooled_compacts_duplicates(self):
        ids = np.array([[1, 4], [4, 4], [2, 1]])
        grad = np.arange(6, dtype=float).reshape(3, 2)
        rg = RowwiseGrad.from_pooled(ids, grad)
        np.testing.assert_array_equal(rg.rows, [1, 2, 4])
        # Row 1: samples 0 and 2; row 4: sample 0 once + sample 1 twice.
        np.testing.assert_allclose(rg.grads[0], grad[0] + grad[2])
        np.testing.assert_allclose(rg.grads[1], grad[2])
        np.testing.assert_allclose(rg.grads[2], grad[0] + 2 * grad[1])

    def test_to_dense_round_trip(self, rng):
        ids = rng.integers(0, 50, size=(8, 3))
        grad = rng.standard_normal((8, 4))
        rg = RowwiseGrad.from_pooled(ids, grad)
        dense = np.zeros((50, 4))
        np.add.at(dense, ids.reshape(-1), np.repeat(grad, 3, axis=0))
        np.testing.assert_array_equal(rg.to_dense((50, 4)), dense)

    def test_to_dense_validates(self):
        rg = RowwiseGrad(rows=np.array([7]), grads=np.ones((1, 4)))
        with pytest.raises(ValueError):
            rg.to_dense((4, 4))  # row 7 out of range
        with pytest.raises(ValueError):
            rg.to_dense((10, 8))  # dim mismatch

    def test_merge_is_row_union_sum(self, rng):
        a = RowwiseGrad(rows=np.array([1, 5]), grads=rng.standard_normal((2, 3)))
        b = RowwiseGrad(rows=np.array([5, 9]), grads=rng.standard_normal((2, 3)))
        m = a.merge(b)
        np.testing.assert_array_equal(m.rows, [1, 5, 9])
        np.testing.assert_array_equal(
            m.to_dense((10, 3)), a.to_dense((10, 3)) + b.to_dense((10, 3))
        )

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            RowwiseGrad(rows=np.zeros((2, 2)), grads=np.zeros((2, 3)))
        with pytest.raises(ValueError):
            RowwiseGrad(rows=np.array([0, 1, 2]), grads=np.zeros((2, 3)))

    def test_nbytes_is_compact(self):
        rg = RowwiseGrad(rows=np.arange(4), grads=np.zeros((4, 8)))
        assert rg.nbytes == 4 * 8 + 4 * 8 * 8


class TestParameterRowGrad:
    def test_grad_property_densifies(self):
        p = Parameter(np.zeros((10, 2)))
        p.add_row_grad(RowwiseGrad(rows=np.array([3]), grads=np.ones((1, 2))))
        assert p.has_grad
        g = p.grad
        assert g.shape == (10, 2)
        assert g[3, 0] == 1.0 and g[0, 0] == 0.0
        assert p.row_grad is None  # consumed by densification

    def test_row_plus_row_stays_compact(self):
        p = Parameter(np.zeros((10, 2)))
        p.add_row_grad(RowwiseGrad(rows=np.array([3]), grads=np.ones((1, 2))))
        p.add_row_grad(RowwiseGrad(rows=np.array([3, 5]), grads=np.ones((2, 2))))
        assert p.row_grad is not None and p.row_grad.num_rows == 2
        np.testing.assert_allclose(p.grad[3], 2.0)

    def test_row_into_dense_scatter_adds(self):
        p = Parameter(np.zeros((4, 2)))
        p.add_grad(np.ones((4, 2)))
        p.add_row_grad(RowwiseGrad(rows=np.array([2]), grads=np.ones((1, 2))))
        np.testing.assert_allclose(p.grad[2], 2.0)
        np.testing.assert_allclose(p.grad[0], 1.0)

    def test_dense_after_row_densifies_first(self):
        p = Parameter(np.zeros((4, 2)))
        p.add_row_grad(RowwiseGrad(rows=np.array([1]), grads=np.ones((1, 2))))
        p.add_grad(np.ones((4, 2)))
        np.testing.assert_allclose(p.grad[1], 2.0)

    def test_zero_grad_clears_both(self):
        p = Parameter(np.zeros((4, 2)))
        p.add_row_grad(RowwiseGrad(rows=np.array([1]), grads=np.ones((1, 2))))
        p.zero_grad()
        assert not p.has_grad and p.grad is None

    def test_grad_setter_clears_row_grad(self):
        p = Parameter(np.zeros((4, 2)))
        p.add_row_grad(RowwiseGrad(rows=np.array([1]), grads=np.ones((1, 2))))
        p.grad = np.zeros((4, 2))
        np.testing.assert_allclose(p.grad, 0.0)

    def test_dim_mismatch_rejected(self):
        p = Parameter(np.zeros((4, 2)))
        with pytest.raises(ValueError):
            p.add_row_grad(RowwiseGrad(rows=np.array([1]), grads=np.ones((1, 3))))


class TestRowwiseAdagrad:
    def _pair(self, rows=32, dim=4, seed=5):
        rng = np.random.default_rng(seed)
        init = rng.standard_normal((rows, dim))
        return Parameter(init.copy()), Parameter(init.copy())

    def test_elementwise_matches_dense_adagrad_bitwise(self, rng):
        p_dense, p_row = self._pair()
        opt_dense = Adagrad([p_dense], lr=0.1)
        opt_row = RowwiseAdagrad([p_row], lr=0.1)
        for step in range(5):
            ids = rng.integers(0, 32, size=(6, 2))
            grad = rng.standard_normal((6, 4))
            dense = np.zeros((32, 4))
            np.add.at(dense, ids.reshape(-1), np.repeat(grad, 2, axis=0))
            p_dense.zero_grad()
            p_dense.add_grad(dense)
            p_row.zero_grad()
            p_row.add_row_grad(RowwiseGrad.from_pooled(ids, grad))
            opt_dense.step()
            opt_row.step()
            np.testing.assert_array_equal(p_dense.data, p_row.data)
        np.testing.assert_array_equal(opt_dense._accum[0], opt_row._accum[0])

    def test_scalar_accumulator_state_is_per_row(self, rng):
        p, _ = self._pair()
        opt = RowwiseAdagrad([p], lr=0.1, accumulator="scalar")
        p.add_row_grad(
            RowwiseGrad(rows=np.array([2, 7]), grads=rng.standard_normal((2, 4)))
        )
        opt.step()
        assert opt._accum[0].shape == (32,)
        assert opt._accum[0][2] > 0 and opt._accum[0][0] == 0

    def test_scalar_dense_fallback_matches_sparse(self, rng):
        p_a, p_b = self._pair()
        opt_a = RowwiseAdagrad([p_a], lr=0.1, accumulator="scalar")
        opt_b = RowwiseAdagrad([p_b], lr=0.1, accumulator="scalar")
        rg = RowwiseGrad(
            rows=np.arange(32), grads=rng.standard_normal((32, 4))
        )
        p_a.add_row_grad(rg)
        p_b.add_grad(rg.to_dense((32, 4)))
        opt_a.step()
        opt_b.step()
        np.testing.assert_allclose(p_a.data, p_b.data, atol=1e-15)

    def test_untouched_rows_never_move(self, rng):
        p, _ = self._pair()
        before = p.data.copy()
        opt = RowwiseAdagrad([p], lr=0.5)
        p.add_row_grad(
            RowwiseGrad(rows=np.array([0]), grads=np.ones((1, 4)))
        )
        opt.step()
        np.testing.assert_array_equal(p.data[1:], before[1:])
        assert not np.array_equal(p.data[0], before[0])

    def test_dense_fallback_matches_adagrad(self, rng):
        p_a, p_b = self._pair()
        g = rng.standard_normal((32, 4))
        p_a.add_grad(g)
        p_b.add_grad(g)
        RowwiseAdagrad([p_a], lr=0.1).step()
        Adagrad([p_b], lr=0.1).step()
        np.testing.assert_array_equal(p_a.data, p_b.data)

    def test_bad_accumulator_rejected(self):
        with pytest.raises(ValueError, match="accumulator"):
            RowwiseAdagrad([Parameter(np.zeros((2, 2)))], lr=0.1, accumulator="row")


class TestFusedCollection:
    def make_ebc(self, rng, F=3, dim=4):
        configs = [TableConfig(f"f{i}", 8 + i, dim) for i in range(F)]
        return EmbeddingBagCollection(configs, rng=rng)

    def test_tables_alias_stacked_matrix(self, rng):
        ebc = self.make_ebc(rng)
        assert ebc.total_rows == 8 + 9 + 10
        for t in ebc.tables:
            assert t.weight.data.base is ebc._stacked

    def test_fused_matches_per_table_forward(self, rng):
        ebc = self.make_ebc(rng)
        ids = rng.integers(0, 8, size=(5, 3, 2))
        fused = ebc(ids)
        per_table = np.stack(
            [ebc.tables[f](ids[:, f]) for f in range(3)], axis=1
        )
        np.testing.assert_array_equal(fused, per_table)

    def test_fused_backward_emits_rowwise(self, rng):
        ebc = self.make_ebc(rng)
        ids = rng.integers(0, 8, size=(4, 3))
        ebc(ids)
        ebc.backward(rng.standard_normal((4, 3, 4)))
        for t in ebc.tables:
            assert t.weight.row_grad is not None
            assert t.weight.row_grad.num_rows <= 4

    def test_dense_mode_emits_dense(self, rng):
        ebc = self.make_ebc(rng)
        ebc.set_sparse_grad_mode("dense")
        ids = rng.integers(0, 8, size=(4, 3))
        ebc(ids)
        ebc.backward(rng.standard_normal((4, 3, 4)))
        for t in ebc.tables:
            assert t.weight.row_grad is None
            assert t.weight.grad.shape == t.weight.shape

    def test_rebound_weight_falls_back_and_recovers(self, rng):
        """Temporarily rebinding weight.data (numeric grad checks do
        this) must not read stale fused storage."""
        ebc = self.make_ebc(rng)
        ids = rng.integers(0, 8, size=(2, 3))
        before = ebc(ids).copy()
        old = ebc.tables[1].weight.data
        try:
            ebc.tables[1].weight.data = old + 1.0
            bumped = ebc(ids)
            np.testing.assert_allclose(bumped[:, 1], before[:, 1] + 1.0)
            np.testing.assert_array_equal(bumped[:, 0], before[:, 0])
            # Fallback backward routes per table.
            ebc.backward(np.ones((2, 3, 4)))
            assert ebc.tables[1].weight.has_grad
        finally:
            ebc.tables[1].weight.data = old
        np.testing.assert_array_equal(ebc(ids), before)

    def test_load_state_dict_preserves_aliasing(self, rng):
        ebc = self.make_ebc(rng)
        other = self.make_ebc(np.random.default_rng(99))
        ebc.load_state_dict(other.state_dict())
        for t, o in zip(ebc.tables, other.tables):
            assert t.weight.data.base is ebc._stacked
            np.testing.assert_array_equal(t.weight.data, o.weight.data)
        # Fused forward sees the loaded values.
        ids = np.ones((1, 3), dtype=int)
        np.testing.assert_array_equal(ebc(ids), other(ids))

    def test_fused_bounds_check_names_offending_table(self, rng):
        ebc = self.make_ebc(rng)
        ids = np.zeros((2, 3), dtype=int)
        ids[1, 1] = 9  # table f1 has 9 rows: id 9 out of range
        with pytest.raises(IndexError, match="f1"):
            ebc(ids)
        ids[1, 1] = -1
        with pytest.raises(IndexError, match="f1"):
            ebc(ids)

    def test_optimizer_step_writes_through_to_stacked(self, rng):
        ebc = self.make_ebc(rng)
        ids = np.ones((2, 3), dtype=int)
        ebc(ids)
        ebc.backward(np.ones((2, 3, 4)))
        opt = RowwiseAdagrad([t.weight for t in ebc.tables], lr=0.1)
        before = ebc._stacked.copy()
        opt.step()
        assert not np.array_equal(ebc._stacked, before)
        # Only the touched rows moved (row 1 of each table).
        changed = np.argwhere(
            np.abs(ebc._stacked - before).sum(axis=1) > 0
        ).reshape(-1)
        expected = ebc._offsets + 1
        np.testing.assert_array_equal(changed, expected)

    def test_set_sparse_grad_mode_walks_model(self, rng):
        ebc = self.make_ebc(rng)
        set_sparse_grad_mode(ebc, "dense")
        assert ebc.sparse_grad_mode == "dense"
        assert all(t.sparse_grad_mode == "dense" for t in ebc.tables)
        with pytest.raises(ValueError, match="sparse_grad_mode"):
            set_sparse_grad_mode(ebc, "sparse")


class TestSingleTableRowwise:
    def test_table_backward_rowwise_no_dense_array(self, rng):
        table = EmbeddingTable(
            TableConfig("t", num_embeddings=1000, dim=4), rng=rng
        )
        table(np.array([3, 3, 7]))
        table.backward(np.ones((3, 4)))
        rg = table.weight.row_grad
        assert rg is not None
        np.testing.assert_array_equal(rg.rows, [3, 7])
        np.testing.assert_allclose(rg.grads[0], 2.0)

    def test_rowwise_matches_dense_reference(self, rng):
        cfg = TableConfig("t", num_embeddings=20, dim=3, pooling=2)
        t_row = EmbeddingTable(cfg, rng=np.random.default_rng(1))
        t_dense = EmbeddingTable(cfg, rng=np.random.default_rng(1))
        t_dense.sparse_grad_mode = "dense"
        ids = rng.integers(0, 20, size=(6, 2))
        grad = rng.standard_normal((6, 3))
        t_row(ids)
        t_row.backward(grad)
        t_dense(ids)
        t_dense.backward(grad)
        np.testing.assert_array_equal(t_row.weight.grad, t_dense.weight.grad)


class TestWarmupDecayRegression:
    def test_decay_start_zero_never_zeroes_lr(self):
        """decay_start=0 used to yield lr=0 for every step >= 1."""
        sched = WarmupDecaySchedule(peak_lr=0.1, warmup_steps=0)
        assert sched.decay_start == 1
        for step in range(10):
            assert sched.lr_at(step) > 0
        assert sched.lr_at(4) == pytest.approx(0.1 * np.sqrt(1 / 4))

    def test_explicit_zero_decay_start_clamped(self):
        sched = WarmupDecaySchedule(peak_lr=1.0, warmup_steps=0, decay_start=0)
        assert sched.decay_start == 1
        assert sched.lr_at(100) == pytest.approx(np.sqrt(1 / 100))

    def test_negative_decay_start_rejected(self):
        with pytest.raises(ValueError, match="decay_start"):
            WarmupDecaySchedule(peak_lr=1.0, warmup_steps=0, decay_start=-1)

    def test_normal_schedule_unchanged(self):
        sched = WarmupDecaySchedule(peak_lr=1.0, warmup_steps=4, decay_start=8)
        assert sched.lr_at(0) == pytest.approx(0.25)
        assert sched.lr_at(3) == pytest.approx(1.0)
        assert sched.lr_at(8) == pytest.approx(1.0)
        assert sched.lr_at(32) == pytest.approx(0.5)


class TestRowwiseGradFuzz:
    """Seeded property/fuzz coverage: random shapes, duplicate-heavy
    and empty index sets all match the dense scatter-add reference."""

    @staticmethod
    def _dense_reference(ids, grad_output, num_rows):
        """The original materialized scatter-add."""
        B, P = ids.shape
        dim = grad_output.shape[1]
        dense = np.zeros((num_rows, dim))
        np.add.at(
            dense, ids.reshape(-1), np.repeat(grad_output, P, axis=0)
        )
        return dense

    @pytest.mark.parametrize("seed", range(20))
    def test_from_pooled_matches_dense_reference(self, seed):
        fuzz = np.random.default_rng(1000 + seed)
        B = int(fuzz.integers(1, 40))
        P = int(fuzz.integers(1, 6))
        dim = int(fuzz.integers(1, 17))
        # Small id spaces make duplicates the common case, not the
        # edge case.
        num_rows = int(fuzz.integers(1, 12 if seed % 2 else 500))
        ids = fuzz.integers(0, num_rows, size=(B, P))
        grad = fuzz.standard_normal((B, dim))
        rg = RowwiseGrad.from_pooled(ids, grad)
        # Rows strictly increasing and exactly the touched set.
        assert np.all(np.diff(rg.rows) > 0)
        np.testing.assert_array_equal(rg.rows, np.unique(ids))
        reference = self._dense_reference(ids, grad, num_rows)
        np.testing.assert_array_equal(
            rg.to_dense((num_rows, dim)), reference
        )
        # scatter_into accumulates rather than overwrites.
        acc = fuzz.standard_normal((num_rows, dim))
        expect = acc + reference
        rg.scatter_into(acc)
        np.testing.assert_array_equal(acc, expect)

    @pytest.mark.parametrize("seed", range(10))
    def test_merge_matches_summed_references(self, seed):
        fuzz = np.random.default_rng(2000 + seed)
        num_rows = int(fuzz.integers(2, 30))
        dim = int(fuzz.integers(1, 9))
        pieces = []
        total = np.zeros((num_rows, dim))
        for _ in range(int(fuzz.integers(2, 5))):
            B = int(fuzz.integers(1, 20))
            P = int(fuzz.integers(1, 4))
            ids = fuzz.integers(0, num_rows, size=(B, P))
            grad = fuzz.standard_normal((B, dim))
            pieces.append(RowwiseGrad.from_pooled(ids, grad))
            total += self._dense_reference(ids, grad, num_rows)
        merged = pieces[0]
        for piece in pieces[1:]:
            merged = merged.merge(piece)
        np.testing.assert_allclose(
            merged.to_dense((num_rows, dim)), total, atol=1e-12, rtol=0
        )

    def test_empty_index_set(self):
        """A zero-sample batch compacts to zero rows and densifies to
        all-zeros rather than crashing."""
        ids = np.empty((0, 3), dtype=np.int64)
        grad = np.empty((0, 4))
        rg = RowwiseGrad.from_pooled(ids, grad)
        assert rg.num_rows == 0
        np.testing.assert_array_equal(
            rg.to_dense((7, 4)), np.zeros((7, 4))
        )
        dense = np.ones((7, 4))
        rg.scatter_into(dense)
        np.testing.assert_array_equal(dense, np.ones((7, 4)))

    @pytest.mark.parametrize("seed", range(10))
    def test_parameter_grad_densification_matches_reference(self, seed):
        """Accumulating row-wise grads on a Parameter and then reading
        ``.grad`` (the densifying escape hatch) equals accumulating the
        dense references directly — including mixed dense/row-wise."""
        fuzz = np.random.default_rng(3000 + seed)
        num_rows = int(fuzz.integers(2, 40))
        dim = int(fuzz.integers(1, 9))
        param = Parameter(fuzz.standard_normal((num_rows, dim)), name="t")
        expect = np.zeros((num_rows, dim))
        for k in range(int(fuzz.integers(1, 5))):
            B = int(fuzz.integers(1, 16))
            P = int(fuzz.integers(1, 4))
            ids = fuzz.integers(0, num_rows, size=(B, P))
            grad = fuzz.standard_normal((B, dim))
            reference = TestRowwiseGradFuzz._dense_reference(
                ids, grad, num_rows
            )
            if k % 3 == 2:
                param.add_grad(reference)  # force a mixed accumulation
            else:
                param.add_row_grad(RowwiseGrad.from_pooled(ids, grad))
            expect += reference
        np.testing.assert_allclose(
            param.grad, expect, atol=1e-12, rtol=0
        )
