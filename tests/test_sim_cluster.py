"""Tests for SimCluster and timeline tracing."""

import numpy as np
import pytest

from repro.hardware import Cluster
from repro.sim import Phase, SimCluster, Timeline


@pytest.fixture
def sim():
    return SimCluster(Cluster(num_hosts=2, gpus_per_host=2, generation="A100"))


class TestTimeline:
    def test_totals_and_breakdown(self):
        tl = Timeline()
        tl.add(Phase.COMPUTE, "fwd", 0.010)
        tl.add(Phase.COMPUTE, "bwd", 0.020)
        tl.add(Phase.EMBEDDING_COMM, "a2a", 0.005)
        assert tl.total() == pytest.approx(0.035)
        assert tl.total(Phase.COMPUTE) == pytest.approx(0.030)
        assert tl.breakdown()[Phase.EMBEDDING_COMM] == pytest.approx(0.005)

    def test_percentages_sum_to_100(self):
        tl = Timeline()
        tl.add(Phase.COMPUTE, "x", 0.7)
        tl.add(Phase.OTHER, "y", 0.3)
        pct = tl.percentages()
        assert sum(pct.values()) == pytest.approx(100.0)
        assert pct[Phase.COMPUTE] == pytest.approx(70.0)

    def test_empty_percentages(self):
        assert Timeline().percentages() == {}

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Timeline().add(Phase.COMPUTE, "x", -1.0)

    def test_format_table_mentions_phases(self):
        tl = Timeline()
        tl.add(Phase.COMPUTE, "x", 0.5)
        text = tl.format_table()
        assert "compute" in text and "total" in text


class TestSimClusterCollectives:
    def test_allreduce_moves_data_and_prices(self, sim):
        out = sim.allreduce(
            sim.world,
            {r: np.full(4, float(r)) for r in range(4)},
            phase=Phase.DENSE_SYNC,
            label="grads",
        )
        np.testing.assert_allclose(out[2], np.full(4, 6.0))
        assert sim.timeline.total(Phase.DENSE_SYNC) > 0

    def test_alltoall_records_bytes(self, sim):
        buffers = {r: [np.zeros(2) for _ in range(4)] for r in range(4)}
        sim.alltoall(sim.world, buffers, phase=Phase.EMBEDDING_COMM, label="emb")
        event = sim.timeline.events[-1]
        assert event.nbytes == 4 * 2 * 8  # four float64 buckets per rank
        assert event.world_size == 4

    def test_concurrent_alltoall_prices_max_not_sum(self, sim):
        buffers = {r: [np.zeros(128) for _ in range(2)] for r in range(4)}
        sim.alltoall_concurrent(
            sim.peer_groups, buffers, phase=Phase.EMBEDDING_COMM, label="peer"
        )
        t_concurrent = sim.timeline.total()

        sim2 = SimCluster(sim.cluster)
        for pg in sim2.peer_groups:
            sub = {r: buffers[r] for r in pg.ranks}
            sim2.alltoall(pg, sub, phase=Phase.EMBEDDING_COMM, label="seq")
        t_sequential = sim2.timeline.total()
        assert t_concurrent < t_sequential

    def test_concurrent_alltoall_rejects_overlapping_groups(self, sim):
        buffers = {r: [np.zeros(2) for _ in range(4)] for r in range(4)}
        with pytest.raises(ValueError, match="disjoint"):
            sim.alltoall_concurrent(
                [sim.world, sim.world], buffers, Phase.EMBEDDING_COMM, "bad"
            )

    def test_concurrent_allreduce_per_host(self, sim):
        out = sim.allreduce_concurrent(
            sim.host_groups,
            {r: np.full(2, float(r)) for r in range(4)},
            phase=Phase.DENSE_SYNC,
            label="tm-sync",
        )
        np.testing.assert_allclose(out[0], [1.0, 1.0])  # ranks 0+1
        np.testing.assert_allclose(out[3], [5.0, 5.0])  # ranks 2+3

    def test_reducescatter_allgather(self, sim):
        rs = sim.reducescatter(
            sim.world,
            {r: np.arange(4, dtype=float) for r in range(4)},
            phase=Phase.EMBEDDING_COMM,
            label="rs",
        )
        np.testing.assert_allclose(rs[1], [4.0])
        ag = sim.allgather(sim.world, rs, phase=Phase.EMBEDDING_COMM, label="ag")
        np.testing.assert_allclose(ag[0], [0.0, 4.0, 8.0, 12.0])

    def test_allgather_prices_per_rank_input_payload(self, sim):
        """Regression: the event must record the pre-gather shard (the
        per-rank payload convention), not the W-times-larger gathered
        buffer, and time it accordingly."""
        shard = np.zeros(32)  # 256 B float64 per rank
        sim.allgather(
            sim.world,
            {r: shard.copy() for r in range(4)},
            phase=Phase.EMBEDDING_COMM,
            label="ag",
        )
        event = sim.timeline.events[-1]
        assert event.nbytes == shard.nbytes  # not 4 * shard.nbytes
        expected = sim.cost_model.allgather(sim.world, shard.nbytes).seconds
        assert event.seconds == pytest.approx(expected)
        # Same wire traffic as ReduceScatter over the gathered buffer.
        rs = sim.cost_model.reducescatter(sim.world, 4 * shard.nbytes)
        assert event.seconds == pytest.approx(rs.seconds)

    def test_compute_records_flops(self, sim):
        """Regression: SimCluster.compute used to drop its flops arg."""
        sim.compute(0.004, "tower module", flops=12_345)
        event = sim.timeline.events[-1]
        assert event.flops == 12_345
        assert sim.timeline.total_flops(Phase.COMPUTE) == 12_345
        assert sim.timeline.total_flops() == 12_345

    def test_alltoall_single(self, sim):
        out = sim.alltoall_single(
            sim.world,
            {r: np.arange(4, dtype=float) + 10 * r for r in range(4)},
            phase=Phase.EMBEDDING_COMM,
            label="a2a",
        )
        np.testing.assert_allclose(out[0], [0.0, 10.0, 20.0, 30.0])

    def test_shuffle_and_compute_events(self, sim):
        sim.shuffle(1 << 20, "peer permute")
        sim.compute(0.004, "tower module")
        assert sim.timeline.total(Phase.SHUFFLE) > 0
        assert sim.timeline.total(Phase.COMPUTE) == pytest.approx(0.004)

    def test_group_accessors(self, sim):
        assert sim.host_group_of(3).ranks == (2, 3)
        assert sim.peer_group_of(3).ranks == (1, 3)
        assert sim.world_size == 4
        assert sim.num_hosts == 2
        assert sim.gpus_per_host == 2
