"""Tests for the §3.1.3 specialized SPTT variants."""

from dataclasses import replace

import pytest

from repro.hardware import Cluster
from repro.perf import (
    SpecializedSPTTModel,
    SPTTOptions,
    khost_peer_groups,
    tower_supergroups,
)
from repro.perf.profiles import dmt_dlrm_profile, dmt_xlrm_profile

B = 16384


def towers_profile(towers: int):
    return replace(
        dmt_dlrm_profile(26), num_towers=towers, name=f"DMT-{towers}T"
    )


@pytest.fixture
def model():
    return SpecializedSPTTModel()


class TestKHostGeometry:
    def test_supergroups_partition_cluster(self):
        cluster = Cluster(num_hosts=8, gpus_per_host=4)
        groups = tower_supergroups(cluster, hosts_per_tower=2)
        assert len(groups) == 4
        seen = sorted(r for g in groups for r in g.ranks)
        assert seen == list(range(32))
        assert all(g.hosts_spanned == 2 for g in groups)

    def test_khost_peer_groups_world_size(self):
        cluster = Cluster(num_hosts=8, gpus_per_host=4)
        peers = khost_peer_groups(cluster, hosts_per_tower=2)
        assert len(peers) == 8  # K * L positions
        assert all(p.world_size == 4 for p in peers)  # H / K towers
        seen = sorted(r for p in peers for r in p.ranks)
        assert seen == list(range(32))

    def test_k1_matches_canonical_groups(self):
        cluster = Cluster(num_hosts=4, gpus_per_host=2)
        supers = tower_supergroups(cluster, 1)
        assert [g.ranks for g in supers] == [
            cluster.ranks_on_host(h) for h in range(4)
        ]

    def test_indivisible_hosts_rejected(self):
        cluster = Cluster(num_hosts=6, gpus_per_host=2)
        with pytest.raises(ValueError):
            tower_supergroups(cluster, 4)


class TestSpecializedModel:
    def test_k1_plain_options_match_base_model(self, model):
        cluster = Cluster(8, 8, "A100")
        bd_spec = model.dmt(towers_profile(8), cluster, B, SPTTOptions())
        bd_base = model.base.dmt(towers_profile(8), cluster, B)
        assert bd_spec.total_s == pytest.approx(bd_base.total_s)

    def test_khost_tradeoff_direction(self, model):
        """§3.1.3: larger K shrinks the peer world but raises step (d);
        with Figure 5's congestion curves the step-d cost dominates, so
        total embedding communication grows with K at this scale."""
        cluster = Cluster(64, 8, "A100")
        sweep = model.khost_sweep(towers_profile, cluster, B, (1, 2, 4))
        embs = [sweep[k].emb_comm_total_s for k in (1, 2, 4)]
        assert embs[0] < embs[1] < embs[2]

    def test_khost_tower_count_validation(self, model):
        cluster = Cluster(8, 8, "A100")
        with pytest.raises(ValueError, match="towers"):
            model.dmt(
                towers_profile(8), cluster, B, SPTTOptions(hosts_per_tower=2)
            )

    def test_multi_hot_reducescatter_cheaper(self, model):
        """Row-wise shards turn step (d) into a ReduceScatter."""
        cluster = Cluster(16, 8, "A100")
        profile = replace(dmt_xlrm_profile(16), num_towers=16)
        a2a = model.dmt(profile, cluster, 4096, SPTTOptions(hosts_per_tower=1, multi_hot_reducescatter=False, virtual_peer_order=True))
        rs = model.dmt(profile, cluster, 4096, SPTTOptions(hosts_per_tower=1, multi_hot_reducescatter=True, virtual_peer_order=True))
        assert rs.emb_comm_total_s <= a2a.emb_comm_total_s

    def test_swap_shuffle_helps_when_ids_small(self, model):
        """§3.1.3: permute the ids instead of the (larger) embeddings."""
        cluster = Cluster(8, 8, "A100")
        profile = towers_profile(8)
        plain = model.dmt(profile, cluster, B, SPTTOptions(swap_shuffle=False))
        swapped = model.dmt(profile, cluster, B, SPTTOptions(swap_shuffle=True))
        assert swapped.compute_s <= plain.compute_s

    def test_virtual_peer_order_removes_shuffle(self, model):
        cluster = Cluster(8, 8, "A100")
        profile = towers_profile(8)
        plain = model.dmt(profile, cluster, B, SPTTOptions(swap_shuffle=True))
        virtual = model.dmt(
            profile, cluster, B, SPTTOptions(virtual_peer_order=True)
        )
        assert virtual.compute_s < plain.compute_s

    def test_options_validation(self):
        with pytest.raises(ValueError):
            SPTTOptions(hosts_per_tower=0)
