"""Tests for the Tower Partitioner pipeline (probe, MDS, K-Means, TP)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partition import FeaturePartition
from repro.partitioner import (
    ConstrainedKMeans,
    PartitionStrategy,
    TowerPartitioner,
    interaction_from_activations,
    mds_embed,
)


@pytest.fixture
def rng():
    return np.random.default_rng(13)


def block_interaction(sizes, high=0.9, low=0.05):
    """Planted block-diagonal interaction matrix."""
    F = sum(sizes)
    I = np.full((F, F), low)
    start = 0
    for s in sizes:
        I[start : start + s, start : start + s] = high
        start += s
    np.fill_diagonal(I, 1.0)
    return I


class TestInteractionProbe:
    def test_identical_activations_give_ones(self):
        acts = np.tile(np.array([1.0, 2.0, 3.0]), (5, 4, 1))
        I = interaction_from_activations(acts)
        np.testing.assert_allclose(I, 1.0)

    def test_orthogonal_features_give_zero(self):
        acts = np.zeros((3, 2, 2))
        acts[:, 0, 0] = 1.0
        acts[:, 1, 1] = 1.0
        I = interaction_from_activations(acts)
        assert I[0, 1] == pytest.approx(0.0, abs=1e-12)

    def test_negative_correlation_maps_to_high_interaction(self):
        """abs() folds strong negative relations into 'interacting'."""
        acts = np.zeros((3, 2, 2))
        acts[:, 0, 0] = 1.0
        acts[:, 1, 0] = -1.0
        I = interaction_from_activations(acts)
        assert I[0, 1] == pytest.approx(1.0)

    def test_output_properties(self, rng):
        acts = rng.standard_normal((8, 5, 6))
        I = interaction_from_activations(acts)
        assert I.shape == (5, 5)
        np.testing.assert_allclose(I, I.T)
        np.testing.assert_allclose(np.diag(I), 1.0)
        assert I.min() >= 0.0 and I.max() <= 1.0

    def test_rejects_bad_shape(self, rng):
        with pytest.raises(ValueError):
            interaction_from_activations(rng.standard_normal((4, 5)))


class TestMDS:
    def test_recovers_simple_geometry(self, rng):
        """Three points with distances 3-4-5 embed consistently in 2D."""
        D = np.array([[0.0, 3.0, 4.0], [3.0, 0.0, 5.0], [4.0, 5.0, 0.0]])
        res = mds_embed(D, dim=2, iterations=800, rng=rng)
        got = np.linalg.norm(
            res.coordinates[:, None] - res.coordinates[None, :], axis=-1
        )
        np.testing.assert_allclose(got, D, atol=0.05)

    def test_stress_decreases(self, rng):
        D = 1.0 - block_interaction([3, 3])
        np.fill_diagonal(D, 0.0)
        res = mds_embed(D, dim=2, iterations=400, rng=rng)
        assert res.history[-1] < res.history[0]

    def test_preserves_relative_distances_of_blocks(self, rng):
        I = block_interaction([3, 3])
        D = 1.0 - I
        np.fill_diagonal(D, 0.0)
        res = mds_embed(D, dim=2, iterations=600, rng=rng)
        x = res.coordinates
        within = np.linalg.norm(x[0] - x[1])
        across = np.linalg.norm(x[0] - x[4])
        assert within < across

    def test_input_validation(self, rng):
        with pytest.raises(ValueError, match="square"):
            mds_embed(np.zeros((2, 3)), rng=rng)
        with pytest.raises(ValueError, match="symmetric"):
            mds_embed(np.array([[0.0, 1.0], [2.0, 0.0]]), rng=rng)
        with pytest.raises(ValueError, match="non-negative"):
            mds_embed(np.array([[0.0, -1.0], [-1.0, 0.0]]), rng=rng)
        with pytest.raises(ValueError):
            mds_embed(np.zeros((2, 2)), dim=0, rng=rng)

    def test_result_shape(self, rng):
        D = 1.0 - block_interaction([2, 2])
        np.fill_diagonal(D, 0.0)
        res = mds_embed(D, dim=3, iterations=50, rng=rng)
        assert res.coordinates.shape == (4, 3)
        assert res.num_points == 4 and res.dim == 3


class TestConstrainedKMeans:
    def test_balanced_labels(self, rng):
        x = rng.standard_normal((12, 2))
        km = ConstrainedKMeans(n_clusters=3)
        km.fit(x, rng=rng)
        assert sorted(km.group_sizes()) == [4, 4, 4]

    def test_separated_clusters_recovered(self, rng):
        centers = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
        x = np.vstack([c + 0.1 * rng.standard_normal((5, 2)) for c in centers])
        km = ConstrainedKMeans(n_clusters=3)
        labels = km.fit_predict(x, rng=rng)
        for block in range(3):
            block_labels = labels[block * 5 : (block + 1) * 5]
            assert len(set(block_labels)) == 1

    def test_balance_beats_unconstrained_on_skewed_data(self, rng):
        """11 points near one spot + 1 far away must still split 6/6... -> cap."""
        x = np.vstack([rng.standard_normal((11, 2)) * 0.01, [[100.0, 100.0]]])
        km = ConstrainedKMeans(n_clusters=2, balance_ratio=1.0)
        km.fit(x, rng=rng)
        assert sorted(km.group_sizes()) == [6, 6]

    def test_looser_ratio_allows_imbalance(self, rng):
        x = np.vstack([rng.standard_normal((11, 2)) * 0.01, [[100.0, 100.0]]])
        km = ConstrainedKMeans(n_clusters=2, balance_ratio=2.0)
        km.fit(x, rng=rng)
        assert max(km.group_sizes()) > 6

    def test_uneven_point_count(self, rng):
        x = rng.standard_normal((26, 2))
        km = ConstrainedKMeans(n_clusters=8)
        km.fit(x, rng=rng)
        sizes = km.group_sizes()
        assert sizes.sum() == 26
        assert max(sizes) <= 4  # ceil(26/8) = 4

    def test_validation(self):
        with pytest.raises(ValueError):
            ConstrainedKMeans(n_clusters=0)
        with pytest.raises(ValueError):
            ConstrainedKMeans(n_clusters=2, balance_ratio=0.5)
        with pytest.raises(ValueError, match="non-empty"):
            ConstrainedKMeans(n_clusters=5).fit(np.zeros((3, 2)))
        with pytest.raises(RuntimeError):
            ConstrainedKMeans(n_clusters=2).group_sizes()

    def test_inertia_not_worse_than_random_assignment(self, rng):
        x = rng.standard_normal((20, 3))
        km = ConstrainedKMeans(n_clusters=4)
        km.fit(x, rng=rng)
        rand_labels = np.repeat(np.arange(4), 5)
        rng.shuffle(rand_labels)
        centers = np.stack([x[rand_labels == k].mean(0) for k in range(4)])
        rand_inertia = ((x - centers[rand_labels]) ** 2).sum()
        assert km.inertia_ <= rand_inertia + 1e-9

    def test_kmeanspp_init_never_selects_a_point_twice(self):
        """Regression: with duplicate-heavy inputs the old k-means++
        init could draw an already-chosen point (uniform fallback once
        every remaining distance was zero), seeding two identical
        centers from the same point."""
        x = np.array([[0.0, 0.0]] * 6 + [[1.0, 1.0], [2.0, 2.0]])
        km = ConstrainedKMeans(n_clusters=4)
        for seed in range(25):
            idx = km._init_centers(x, np.random.default_rng(seed))
            assert len(set(idx.tolist())) == km.n_clusters
        # and the full fit still balances on such degenerate inputs
        km.fit(x, rng=np.random.default_rng(0))
        assert km.group_sizes().sum() == len(x)
        assert max(km.group_sizes()) <= 2  # cap = ceil(8/4)


class TestTowerPartitioner:
    def test_coherent_recovers_planted_blocks(self, rng):
        I = block_interaction([4, 4, 4])
        tp = TowerPartitioner(num_towers=3, strategy="coherent")
        result = tp.partition_from_interaction(I, rng=rng)
        groups = sorted(tuple(sorted(g)) for g in result.partition.groups)
        assert groups == [(0, 1, 2, 3), (4, 5, 6, 7), (8, 9, 10, 11)]

    def test_coherent_beats_naive_on_within_group_interaction(self, rng):
        """The mechanism behind Table 6: TP groups interacting features."""
        I = block_interaction([4, 4, 4, 4])
        tp = TowerPartitioner(num_towers=4, strategy="coherent")
        result = tp.partition_from_interaction(I, rng=rng)
        naive = FeaturePartition.strided(16, 4)
        naive_score = TowerPartitioner.within_group_score(I, naive)
        assert result.within_group_interaction > naive_score + 0.3

    def test_diverse_spreads_blocks(self, rng):
        """Diverse strategy puts similar features in different towers."""
        I = block_interaction([4, 4])
        tp = TowerPartitioner(num_towers=2, strategy="diverse")
        result = tp.partition_from_interaction(I, rng=rng)
        coherent_score = TowerPartitioner.within_group_score(
            I, FeaturePartition.contiguous(8, 2)
        )
        assert result.within_group_interaction < coherent_score

    def test_balanced_output(self, rng):
        I = block_interaction([9, 3])  # natural clusters don't match towers
        tp = TowerPartitioner(num_towers=4)
        result = tp.partition_from_interaction(I, rng=rng)
        assert result.partition.num_towers == 4
        assert max(result.partition.sizes()) <= 3

    def test_partition_from_activations(self, rng):
        acts = np.zeros((16, 6, 4))
        acts[:, :3, 0] = rng.standard_normal((16, 3)) + 1
        acts[:, 3:, 1] = rng.standard_normal((16, 3)) + 1
        tp = TowerPartitioner(num_towers=2, strategy="coherent")
        result = tp.partition_from_activations(acts, rng=rng)
        groups = sorted(tuple(sorted(g)) for g in result.partition.groups)
        assert groups == [(0, 1, 2), (3, 4, 5)]

    def test_strategy_strings(self):
        assert (
            TowerPartitioner(2, strategy="diverse").strategy
            is PartitionStrategy.DIVERSE
        )
        with pytest.raises(ValueError):
            TowerPartitioner(2, strategy="bogus")

    def test_validation(self, rng):
        tp = TowerPartitioner(num_towers=4)
        with pytest.raises(ValueError, match="square"):
            tp.partition_from_interaction(np.zeros((2, 3)), rng=rng)
        with pytest.raises(ValueError, match="towers"):
            tp.partition_from_interaction(np.eye(3), rng=rng)
        with pytest.raises(ValueError, match="interaction values"):
            tp.partition_from_interaction(np.eye(4) * 2, rng=rng)
        with pytest.raises(ValueError):
            TowerPartitioner(num_towers=0)

    def test_result_carries_artifacts_for_figure9(self, rng):
        I = block_interaction([4, 4])
        result = TowerPartitioner(2).partition_from_interaction(I, rng=rng)
        assert result.interaction.shape == (8, 8)
        assert result.coordinates.shape == (8, 2)
        assert result.distances.shape == (8, 8)


@settings(max_examples=10, deadline=None)
@given(
    n_blocks=st.integers(2, 4),
    block_size=st.integers(2, 4),
    seed=st.integers(0, 100),
)
def test_tp_partition_is_always_valid_property(n_blocks, block_size, seed):
    """Property: TP yields a valid, balanced partition on any block input."""
    rng = np.random.default_rng(seed)
    I = block_interaction([block_size] * n_blocks)
    tp = TowerPartitioner(num_towers=n_blocks, mds_iterations=150)
    result = tp.partition_from_interaction(I, rng=rng)
    p = result.partition
    assert p.num_features == n_blocks * block_size
    assert p.num_towers == n_blocks
    assert max(p.sizes()) - min(p.sizes()) <= 1
