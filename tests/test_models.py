"""Tests for DLRM, DCN, tower modules, and DMT model variants."""

import numpy as np
import pytest

from repro.core.partition import FeaturePartition
from repro.models import (
    DCN,
    DLRM,
    DMTDCN,
    DMTDLRM,
    DCNTowerModule,
    DLRMTowerModule,
    PassThroughTower,
    criteo_table_configs,
    paper_dcn_arch,
    paper_dlrm_arch,
    tiny_table_configs,
)
from repro.models.configs import tiny_dcn_arch, tiny_dlrm_arch
from repro.nn import BCEWithLogitsLoss
from tests.util import numeric_grad

F, N, B, DENSE = 6, 8, 5, 4


@pytest.fixture
def rng():
    return np.random.default_rng(21)


def tiny_tables(dim=N, f=F):
    return tiny_table_configs(num_features=f, num_embeddings=12, dim=dim)


def batch(rng, f=F, dense=DENSE, b=B, cardinality=12):
    return (
        rng.standard_normal((b, dense)),
        rng.integers(0, cardinality, size=(b, f)),
        rng.integers(0, 2, size=b).astype(float),
    )


def end_to_end_grad_check(model, dense, ids, labels, rng, atol=1e-5):
    """Full-model gradient check through BCE loss."""
    loss_mod = BCEWithLogitsLoss()

    model.zero_grad()
    loss_mod(model(dense, ids), labels)
    model.backward(loss_mod.backward())

    params = list(model.named_parameters())
    # Spot-check a few parameters, including an embedding table.
    to_check = [params[0], params[len(params) // 2], params[-1]]
    for name, p in to_check:
        analytic = p.grad if p.grad is not None else np.zeros_like(p.data)

        def f(val, p=p):
            old = p.data
            p.data = val
            try:
                return BCEWithLogitsLoss()(model(dense, ids), labels)
            finally:
                p.data = old

        num = numeric_grad(f, p.data.copy())
        np.testing.assert_allclose(
            analytic, num, atol=atol, rtol=1e-4, err_msg=f"param {name}"
        )


class TestDLRM:
    def test_forward_shape_and_finiteness(self, rng):
        model = DLRM(DENSE, tiny_tables(), tiny_dlrm_arch(N), rng=rng)
        dense, ids, _ = batch(rng)
        logits = model(dense, ids)
        assert logits.shape == (B,)
        assert np.all(np.isfinite(logits))

    def test_gradients_end_to_end(self, rng):
        model = DLRM(DENSE, tiny_tables(), tiny_dlrm_arch(N), rng=rng)
        end_to_end_grad_check(model, *batch(rng), rng)

    def test_dense_sparse_param_split(self, rng):
        model = DLRM(DENSE, tiny_tables(), tiny_dlrm_arch(N), rng=rng)
        dense_n = sum(p.size for p in model.dense_parameters())
        sparse_n = sum(p.size for p in model.sparse_parameters())
        assert dense_n + sparse_n == model.num_parameters()
        assert sparse_n == F * 12 * N

    def test_dim_mismatch_rejected(self, rng):
        with pytest.raises(ValueError, match="dim"):
            DLRM(DENSE, tiny_tables(dim=4), tiny_dlrm_arch(N), rng=rng)

    def test_paper_scale_flops_close_to_table4(self):
        """3x measured forward MFlops ~ Table 4's 14.74 for DLRM
        (the fwd+bwd profiler convention; see configs.paper_dlrm_arch)."""
        model = DLRM(
            13,
            tiny_table_configs(26, num_embeddings=4, dim=128),
            paper_dlrm_arch(),
            rng=np.random.default_rng(0),
        )
        mflops = 3 * model.flops_per_sample() / 1e6
        assert mflops == pytest.approx(14.74, rel=0.05)

    def test_paper_scale_embedding_params(self):
        """Paper-scale tables hold ~22.8G parameters (~90GB fp32)."""
        total = sum(c.num_parameters for c in criteo_table_configs())
        assert total / 1e9 == pytest.approx(22.8, rel=0.02)


class TestDCN:
    def test_forward_shape(self, rng):
        model = DCN(DENSE, tiny_tables(), tiny_dcn_arch(N), rng=rng)
        dense, ids, _ = batch(rng)
        assert model(dense, ids).shape == (B,)

    def test_gradients_end_to_end(self, rng):
        model = DCN(DENSE, tiny_tables(), tiny_dcn_arch(N), rng=rng)
        end_to_end_grad_check(model, *batch(rng), rng)

    def test_requires_cross_layers(self, rng):
        with pytest.raises(ValueError, match="cross_layers"):
            DCN(DENSE, tiny_tables(), tiny_dlrm_arch(N), rng=rng)

    def test_paper_scale_flops_close_to_table4(self):
        """3x measured forward MFlops ~ Table 4's 96.22 for DCN."""
        model = DCN(
            13,
            tiny_table_configs(26, num_embeddings=4, dim=128),
            paper_dcn_arch(),
            rng=np.random.default_rng(0),
        )
        mflops = 3 * model.flops_per_sample() / 1e6
        assert mflops == pytest.approx(96.22, rel=0.05)

    def test_dcn_costs_more_than_dlrm(self):
        """The paper's complexity gap: DCN ~6.5x DLRM flops."""
        dlrm = DLRM(
            13,
            tiny_table_configs(26, num_embeddings=4, dim=128),
            paper_dlrm_arch(),
        )
        dcn = DCN(
            13,
            tiny_table_configs(26, num_embeddings=4, dim=128),
            paper_dcn_arch(),
        )
        ratio = dcn.flops_per_sample() / dlrm.flops_per_sample()
        assert 4.5 < ratio < 9.0


class TestTowerModules:
    def test_pass_through_identity(self, rng):
        tm = PassThroughTower(3, N)
        x = rng.standard_normal((B, 3, N))
        np.testing.assert_array_equal(tm(x), x.reshape(B, -1))
        np.testing.assert_array_equal(tm.backward(tm(x)), x)
        assert tm.compression_ratio() == 1.0

    def test_dlrm_tm_listing1_output_dim(self, rng):
        """Listing 1: O = D * (c*F_t + p)."""
        tm = DLRMTowerModule(4, N, out_dim_per_vector=2, c=1, p=1, rng=rng)
        x = rng.standard_normal((B, 4, N))
        assert tm(x).shape == (B, 2 * (1 * 4 + 1))
        assert tm.out_vectors == 5

    def test_dlrm_tm_compression_ratio(self, rng):
        """c=1, p=0, D=N/2 halves the bytes (Table 5's CR=2 row)."""
        tm = DLRMTowerModule(4, N, out_dim_per_vector=N // 2, c=1, p=0, rng=rng)
        assert tm.compression_ratio() == pytest.approx(2.0)

    def test_dlrm_tm_gradients(self, rng):
        tm = DLRMTowerModule(3, 4, out_dim_per_vector=2, c=1, p=1, rng=rng)
        from tests.util import check_module_gradients

        check_module_gradients(tm, rng.standard_normal((2, 3, 4)), rng)

    def test_dlrm_tm_rejects_no_outputs(self, rng):
        with pytest.raises(ValueError):
            DLRMTowerModule(3, 4, 2, c=0, p=0, rng=rng)

    def test_dcn_tm_shapes_and_gradients(self, rng):
        tm = DCNTowerModule(3, 4, out_dim_per_vector=2, rng=rng)
        x = rng.standard_normal((2, 3, 4))
        assert tm(x).shape == (2, 6)
        from tests.util import check_module_gradients

        check_module_gradients(tm, x, rng, atol=1e-5)

    def test_dcn_tm_flops_include_crossnet(self, rng):
        tm = DCNTowerModule(4, 8, out_dim_per_vector=8, cross_layers=2, rng=rng)
        flat = 4 * 8
        assert tm.flops_per_sample() == 2 * 2 * flat * flat + 2 * flat * flat

    def test_dlrm_tm_flops_per_feature_projection(self, rng):
        tm = DLRMTowerModule(4, 8, out_dim_per_vector=2, c=3, p=0, rng=rng)
        assert tm.flops_per_sample() == 4 * 2 * 8 * 6


class TestDMTDLRM:
    def make(self, rng, towers=3, pass_through=False, tower_dim=4):
        partition = FeaturePartition.contiguous(F, towers)
        return DMTDLRM(
            DENSE,
            tiny_tables(),
            partition,
            tiny_dlrm_arch(N),
            tower_dim=tower_dim,
            pass_through=pass_through,
            rng=rng,
        )

    def test_forward_shape(self, rng):
        model = self.make(rng)
        dense, ids, _ = batch(rng)
        assert model(dense, ids).shape == (B,)

    def test_gradients_end_to_end(self, rng):
        model = self.make(rng, towers=2)
        end_to_end_grad_check(model, *batch(rng), rng)

    def test_pass_through_equals_flat_dlrm(self, rng):
        """Table 3's model-side claim: identity towers + order-preserving
        partition + shared weights => bitwise identical logits."""
        flat = DLRM(DENSE, tiny_tables(), tiny_dlrm_arch(N), rng=rng)
        dmt = self.make(np.random.default_rng(99), towers=3, pass_through=True)
        dmt.load_state_dict(flat.state_dict())
        dense, ids, _ = batch(rng)
        np.testing.assert_array_equal(dmt(dense, ids), flat(dense, ids))

    def test_compression_ratio(self, rng):
        model = self.make(rng, tower_dim=N // 2)
        assert model.compression_ratio() == pytest.approx(2.0)

    def test_tower_count_matches_partition(self, rng):
        model = self.make(rng, towers=3)
        assert len(model.towers) == 3

    def test_dense_tower_sparse_split_covers_params(self, rng):
        model = self.make(rng)
        total = (
            sum(p.size for p in model.dense_parameters())
            + sum(p.size for p in model.tower_parameters())
            + sum(p.size for p in model.sparse_parameters())
        )
        assert total == model.num_parameters()

    def test_partition_feature_count_checked(self, rng):
        with pytest.raises(ValueError, match="partition"):
            DMTDLRM(
                DENSE,
                tiny_tables(),
                FeaturePartition.contiguous(F + 1, 2),
                tiny_dlrm_arch(N),
                rng=rng,
            )

    def test_compressed_model_cheaper_than_flat(self, rng):
        """Tower compression reduces interaction+top flops (Table 4)."""
        flat = DLRM(DENSE, tiny_tables(), tiny_dlrm_arch(N), rng=rng)
        dmt = self.make(rng, towers=3, tower_dim=2)
        assert dmt.interaction.flops_per_sample() < flat.interaction.flops_per_sample()

    def test_scrambled_partition_routes_correct_features(self, rng):
        """A permuted partition must still consume each feature once."""
        partition = FeaturePartition.from_groups([[3, 0], [5, 1], [4, 2]])
        model = DMTDLRM(
            DENSE,
            tiny_tables(),
            partition,
            tiny_dlrm_arch(N),
            pass_through=True,
            rng=rng,
        )
        dense, ids, _ = batch(rng)
        logits = model(dense, ids)
        assert np.all(np.isfinite(logits))
        model.zero_grad()
        loss = BCEWithLogitsLoss()
        loss(logits, np.zeros(B))
        model.backward(loss.backward())
        for table in model.embeddings.tables:
            assert table.weight.grad is not None


class TestDMTDCN:
    def make(self, rng, towers=2, pass_through=False, tower_dim=N):
        partition = FeaturePartition.contiguous(F, towers)
        return DMTDCN(
            DENSE,
            tiny_tables(),
            partition,
            tiny_dcn_arch(N),
            tower_dim=tower_dim,
            pass_through=pass_through,
            rng=rng,
        )

    def test_forward_shape(self, rng):
        model = self.make(rng)
        dense, ids, _ = batch(rng)
        assert model(dense, ids).shape == (B,)

    def test_gradients_end_to_end(self, rng):
        model = self.make(rng)
        end_to_end_grad_check(model, *batch(rng), rng, atol=1e-5)

    def test_pass_through_equals_flat_dcn(self, rng):
        flat = DCN(DENSE, tiny_tables(), tiny_dcn_arch(N), rng=rng)
        dmt = self.make(np.random.default_rng(99), pass_through=True)
        dmt.load_state_dict(flat.state_dict())
        dense, ids, _ = batch(rng)
        np.testing.assert_array_equal(dmt(dense, ids), flat(dense, ids))

    def test_tower_dim_shrinks_cross_dim(self, rng):
        small = self.make(rng, tower_dim=2)
        big = self.make(rng, tower_dim=N)
        assert small.cross_dim < big.cross_dim

    def test_compression_ratio(self, rng):
        model = self.make(rng, tower_dim=N // 4)
        assert model.compression_ratio() == pytest.approx(4.0)
