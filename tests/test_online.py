"""Tests for the train→serve freshness loop (PR 9).

Covers the three bugfix satellites — the ``train_window`` bookkeeping
path that replaced ``train_epoch``, the splitmix64 per-epoch shuffle
seed (no more ``seed + epoch`` aliasing), and ``CheckpointManager.pin``
protecting live checkpoints from retention pruning — plus the delta
checkpoint equivalence suite, the hot-swap zero-change oracle, the
:class:`~repro.online.OnlineDriver` / :class:`~repro.online.
RolloutPlanner` pair, and the ``Session.online`` acceptance criteria
(strict freshness dominance at equal serving cost, deltas >= 5x
smaller than full saves).
"""

import os
import shutil

import numpy as np
import pytest

from repro.api import Session
from repro.checkpoint import (
    CheckpointChainError,
    CheckpointManager,
    checkpoint_nbytes,
    delta_touched_rows,
    load_delta_checkpoint,
    resolve_delta_chain,
    save_delta_checkpoint,
    save_training_checkpoint,
)
from repro.data import random_batch
from repro.hardware import Cluster
from repro.models import DLRM
from repro.models.configs import DenseArch, tiny_table_configs
from repro.online import OnlineDriver, RolloutPlanner, stacked_touched_ids
from repro.serving import (
    MicroBatcher,
    Placement,
    RequestStream,
    ResilientFleet,
    ServingModel,
    SwapEvent,
    WorkloadConfig,
)
from repro.sim import SimCluster
from repro.training import TrainConfig, Trainer
from repro.training.loop import _mix_epoch_seed

NUM_DENSE = 4
NUM_TABLES = 4
CARD = 64
DIM = 8


def build(mode="rowwise", init_seed=0):
    """A tiny trainable DLRM + trainer (geometry shared by all tests)."""
    model = DLRM(
        NUM_DENSE,
        tiny_table_configs(NUM_TABLES, CARD, DIM),
        DenseArch(embedding_dim=DIM, bottom_mlp=(16,), top_mlp=(16,)),
        rng=np.random.default_rng(init_seed),
    )
    trainer = Trainer(
        model,
        TrainConfig(batch_size=32, epochs=1, sparse_grad_mode=mode, seed=0),
    )
    return model, trainer


def window(i, n=128):
    """One deterministic stream window of (dense, ids, labels)."""
    return random_batch(
        n, NUM_DENSE, NUM_TABLES, CARD, rng=np.random.default_rng(100 + i)
    )


# ----------------------------------------------------------------------
class TestSeedMixRegression:
    """Bugfix: per-epoch shuffle seeds no longer alias across runs."""

    def test_old_colliding_pairs_now_distinct(self):
        # Under ``seed + epoch`` these replayed identical batch orders.
        assert _mix_epoch_seed(11, 1) != _mix_epoch_seed(12, 0)
        assert _mix_epoch_seed(0, 1) != _mix_epoch_seed(1, 0)

    def test_neighbouring_grid_is_collision_free(self):
        pairs = [(s, e) for s in range(16) for e in range(8)]
        mixed = {_mix_epoch_seed(s, e) for s, e in pairs}
        assert len(mixed) == len(pairs)

    def test_deterministic(self):
        assert _mix_epoch_seed(3, 5) == _mix_epoch_seed(3, 5)


# ----------------------------------------------------------------------
class TestTrainWindowBookkeeping:
    """Bugfix: the stream entry point routes through the bookkept
    epoch internals (the old ``train_epoch`` bypassed them)."""

    def test_train_epoch_is_gone(self):
        assert not hasattr(Trainer, "train_epoch")

    def test_window_advances_all_progress_counters(self):
        model, trainer = build()
        loss = trainer.train_window(*window(0))
        assert trainer.epoch == 1
        assert trainer.epoch_losses == [loss]
        assert trainer.global_step == 4  # 128 samples / batch 32
        assert len(trainer.loss_history) == 4
        state = trainer.state_dict()
        assert state["epoch"] == 1
        assert state["global_step"] == 4
        assert state["epoch_losses"] == [loss]

    def test_snapshot_resumes_bit_identically(self):
        model, trainer = build()
        trainer.train_window(*window(0))
        m2, t2 = build(init_seed=7)
        m2.load_state_dict(model.state_dict())
        t2.load_state_dict(trainer.state_dict())
        w1 = window(1)
        assert trainer.train_window(*w1) == t2.train_window(*w1)
        for (n1, p1), (n2, p2) in zip(
            model.named_parameters(), m2.named_parameters()
        ):
            assert n1 == n2
            assert np.array_equal(p1.data, p2.data)


# ----------------------------------------------------------------------
class TestCheckpointManagerPin:
    """Bugfix: retention pruning must not delete live checkpoints."""

    def test_pinned_base_survives_pruning(self, tmp_path):
        model, trainer = build()
        mgr = CheckpointManager(str(tmp_path), keep_last=1)
        trainer.train_window(*window(0))
        base = mgr.save(model, trainer)
        mgr.pin(base)
        trainer.train_window(*window(1))
        mgr.save(model, trainer)
        trainer.train_window(*window(2))
        latest = mgr.save(model, trainer)
        assert os.path.isdir(base)  # pinned: still loadable
        assert os.path.isdir(latest)
        assert len(mgr.saved_steps()) == 2  # pinned + newest only

    def test_unpinned_base_is_pruned(self, tmp_path):
        model, trainer = build()
        mgr = CheckpointManager(str(tmp_path), keep_last=1)
        trainer.train_window(*window(0))
        first = mgr.save(model, trainer)
        trainer.train_window(*window(1))
        mgr.save(model, trainer)
        assert not os.path.isdir(first)

    def test_pin_none_is_noop(self, tmp_path):
        CheckpointManager(str(tmp_path)).pin(None)


# ----------------------------------------------------------------------
class TestDeltaEquivalence:
    """A base + N deltas must restore bit-identically to a full save."""

    def _chain(self, mode, tmp_path, n_deltas=3):
        model, trainer = build(mode)
        trainer.train_window(*window(0))
        base = save_training_checkpoint(
            str(tmp_path / "v1_full"), model, trainer
        )
        last = base
        for i in range(1, n_deltas + 1):
            wi = window(i)
            trainer.train_window(*wi)
            last = save_delta_checkpoint(
                str(tmp_path / f"v{i + 1}_delta"),
                model,
                trainer,
                base=last,
                touched=delta_touched_rows(wi[1], NUM_TABLES),
            )
        return model, trainer, base, last

    @pytest.mark.parametrize("mode", ["rowwise", "dense"])
    def test_base_plus_deltas_bit_identical(self, mode, tmp_path):
        model, trainer, base, tip = self._chain(mode, tmp_path)
        m2, t2 = build(mode, init_seed=7)  # different init: must be overwritten
        load_delta_checkpoint(tip, m2, t2)
        for (n1, p1), (n2, p2) in zip(
            model.named_parameters(), m2.named_parameters()
        ):
            assert n1 == n2
            assert np.array_equal(p1.data, p2.data), n1
        assert t2.global_step == trainer.global_step
        assert t2.epoch == trainer.epoch
        # The restored tip trains on bit-identically.
        w = window(9)
        assert trainer.train_window(*w) == t2.train_window(*w)

    def test_deltas_are_at_least_5x_smaller(self, tmp_path):
        # ISSUE acceptance: when the embedding plane dominates the
        # bytes (tables much larger than the hot set, the online
        # geometry), a touched-rows delta is >= 5x smaller than a full
        # save.
        model = DLRM(
            NUM_DENSE,
            tiny_table_configs(NUM_TABLES, 4096, DIM),
            DenseArch(embedding_dim=DIM, bottom_mlp=(16,), top_mlp=(16,)),
            rng=np.random.default_rng(0),
        )
        trainer = Trainer(model, TrainConfig(batch_size=32, epochs=1))
        w0 = random_batch(
            64, NUM_DENSE, NUM_TABLES, 4096, rng=np.random.default_rng(0)
        )
        trainer.train_window(*w0)
        base = save_training_checkpoint(
            str(tmp_path / "v1_full"), model, trainer
        )
        w1 = random_batch(
            64, NUM_DENSE, NUM_TABLES, 4096, rng=np.random.default_rng(1)
        )
        trainer.train_window(*w1)
        delta = save_delta_checkpoint(
            str(tmp_path / "v2_delta"),
            model,
            trainer,
            base=base,
            touched=delta_touched_rows(w1[1], NUM_TABLES),
        )
        assert checkpoint_nbytes(base) >= 5 * checkpoint_nbytes(delta)

    def test_chain_resolves_base_first(self, tmp_path):
        _, _, base, tip = self._chain("rowwise", tmp_path, n_deltas=2)
        chain = resolve_delta_chain(tip)
        assert len(chain) == 3
        assert chain[0] == base
        assert chain[-1] == tip
        # A bare full checkpoint is its own chain.
        assert resolve_delta_chain(base) == [base]

    def test_orphaned_chain_is_a_typed_error(self, tmp_path):
        _, _, base, tip = self._chain("rowwise", tmp_path)
        shutil.rmtree(base)
        with pytest.raises(CheckpointChainError, match="orphaned"):
            resolve_delta_chain(tip)
        m2, t2 = build()
        with pytest.raises(CheckpointChainError):
            load_delta_checkpoint(tip, m2, t2)

    def test_corrupt_link_is_a_typed_error(self, tmp_path):
        _, _, base, tip = self._chain("rowwise", tmp_path, n_deltas=2)
        middle = resolve_delta_chain(tip)[1]
        with open(os.path.join(middle, "manifest.json"), "w") as fh:
            fh.write("{ not json")
        with pytest.raises(CheckpointChainError):
            resolve_delta_chain(tip)

    def test_empty_delta_restores_base_exactly(self, tmp_path):
        # Zero touched rows: the delta only re-states the dense arch,
        # so the restore equals the base state (the zero-change swap).
        model, trainer = build()
        trainer.train_window(*window(0))
        base = save_training_checkpoint(
            str(tmp_path / "v1_full"), model, trainer
        )
        want = {k: v.copy() for k, v in model.state_dict().items()}
        delta = save_delta_checkpoint(
            str(tmp_path / "v2_delta"),
            model,
            trainer,
            base=base,
            touched={},
        )
        m2, t2 = build(init_seed=7)
        load_delta_checkpoint(delta, m2, t2)
        got = m2.state_dict()
        assert set(got) == set(want)
        for key in want:
            assert np.array_equal(got[key], want[key]), key


# ----------------------------------------------------------------------
class TestStackedTouchedIds:
    def test_offsets_follow_table_order(self):
        touched = {0: np.array([1, 3]), 2: np.array([0])}
        out = stacked_touched_ids(touched, [4, 4, 4])
        assert out.tolist() == [1, 3, 8]

    def test_empty_is_empty(self):
        out = stacked_touched_ids({}, [4, 4])
        assert out.size == 0
        assert out.dtype == np.int64


# ----------------------------------------------------------------------
class TestOnlineDriver:
    def _windows(self, n):
        return [(window(2 * i), window(2 * i + 1, n=64)) for i in range(n)]

    def test_rejects_bad_knobs(self, tmp_path):
        model, trainer = build()
        with pytest.raises(ValueError, match="compact_every"):
            OnlineDriver(model, trainer, str(tmp_path), compact_every=0)
        with pytest.raises(ValueError, match="canary_threshold"):
            OnlineDriver(model, trainer, str(tmp_path), canary_threshold=0.6)
        driver = OnlineDriver(model, trainer, str(tmp_path))
        with pytest.raises(ValueError, match="windows"):
            driver.run(self._windows(1))

    def test_run_emits_chain_and_gates(self, tmp_path):
        model, trainer = build()
        driver = OnlineDriver(
            model,
            trainer,
            str(tmp_path),
            compact_every=2,
            canary_threshold=0.45,  # wide-open gate: every deploy lands
        )
        report = driver.run(self._windows(4))
        assert len(report.windows) == 4
        assert report.windows[0]["staleness_windows"] == 0
        assert [c["kind"] for c in report.checkpoints] == [
            "full",
            "delta",
            "full",
            "delta",
        ]
        assert report.num_versions + report.num_rollbacks == 4
        assert report.full_nbytes > 0
        assert report.mean_delta_nbytes > 0
        # (No compression bar here: these toy tables are so small the
        # window touches every row — the >= 5x acceptance geometry is
        # pinned in TestDeltaEquivalence and the Session suite below.)
        # With no rollback the deployed version trails by one window.
        if report.num_rollbacks == 0:
            assert all(
                w["staleness_windows"] == 1 for w in report.windows[1:]
            )
            # The final window's deploy is past the trace end.
            assert len(report.rollouts) == 2
        # Every delta tip restores (the chain is well-formed on disk).
        tips = [c["path"] for c in report.checkpoints if c["kind"] == "delta"]
        m2, _ = build(init_seed=7)
        load_delta_checkpoint(tips[-1], m2)
        curve = report.staleness_curve()
        assert [p["window"] for p in curve] == [0, 1, 2, 3]


# ----------------------------------------------------------------------
class TestRolloutPlanner:
    def test_default_stages(self):
        assert RolloutPlanner.default_stages(1) == (1,)
        assert RolloutPlanner.default_stages(2) == (1, 2)
        assert RolloutPlanner.default_stages(4) == (1, 2, 4)
        assert RolloutPlanner.default_stages(5) == (1, 3, 5)

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError, match="exceeds"):
            RolloutPlanner(2, 4, 1.0, stages=(1, 3))
        with pytest.raises(ValueError, match="strictly increasing"):
            RolloutPlanner(4, 4, 1.0, stages=(2, 2, 4))
        with pytest.raises(ValueError, match="num_windows"):
            RolloutPlanner(4, 1, 1.0)

    def _rollout(self, **overrides):
        out = dict(
            deploy_window=1,
            version=2,
            rolled_back=False,
            warm_rows=np.array([3, 17], dtype=np.int64),
        )
        out.update(overrides)
        return out

    def test_staged_deploy_covers_the_fleet(self):
        planner = RolloutPlanner(4, 4, 4.0, swap_s=0.001)
        events = planner.plan([self._rollout()])
        # Stages (1, 2, 4): each replica swaps exactly once.
        assert sorted(e.replica for e in events) == [0, 1, 2, 3]
        assert all(e.version == 2 for e in events)
        assert all(e.swap_s == 0.001 for e in events)
        assert all(np.array_equal(e.warm_rows, [3, 17]) for e in events)
        # Canary first, fleet later; all within the deploy window.
        times = [e.at_s for e in events]
        assert times == sorted(times)
        assert times[0] == pytest.approx(1.0)  # boundary of window 1
        assert times[-1] < 2.0

    def test_rollback_pays_twice_on_the_canary(self):
        planner = RolloutPlanner(4, 4, 4.0)
        events = planner.plan(
            [self._rollout(rolled_back=True, version=3)]
        )
        assert len(events) == 2
        assert [e.replica for e in events] == [0, 0]
        assert [e.version for e in events] == [3, 2]

    def test_deploys_past_trace_end_are_skipped(self):
        planner = RolloutPlanner(4, 4, 4.0)
        assert planner.plan([self._rollout(deploy_window=4)]) == []
        # ... unless rolled back: the canary still briefly served it.
        events = planner.plan(
            [self._rollout(deploy_window=4, rolled_back=True)]
        )
        assert len(events) == 2


# ----------------------------------------------------------------------
class TestZeroChangeSwapOracle:
    """A swap with no downtime, no prefill, and a kept cache must be
    bit-identical to not swapping at all."""

    def _fleet(self, swaps=()):
        sim = SimCluster(
            Cluster(num_hosts=4, gpus_per_host=2, generation="A100")
        )
        return ResilientFleet(
            sim,
            ServingModel(
                name="tiny", num_lookups=4, embedding_dim=16, dense_mflops=1.0
            ),
            Placement("disaggregated", emb_hosts=1),
            MicroBatcher(16, 0.001),
            num_replicas=3,
            cache_rows=256,
            swaps=swaps,
        )

    def test_oracle(self):
        requests = RequestStream(
            WorkloadConfig(
                qps=50_000.0,
                num_requests=2000,
                num_lookups=4,
                key_space=2000,
                seed=3,
            )
        ).generate()
        span = requests[-1].arrival_s
        noop = SwapEvent(
            at_s=0.5 * span,
            replica=0,
            version=2,
            swap_s=0.0,
            warm_rows=0,
            fresh_cache=False,
        )
        base = self._fleet().serve(requests).to_dict()
        swapped = self._fleet(swaps=(noop,)).serve(requests).to_dict()
        assert base.pop("swaps") == []
        assert len(swapped.pop("swaps")) == 1
        assert swapped == base


# ----------------------------------------------------------------------
class TestSessionOnlineAcceptance:
    """The ISSUE's acceptance bar, end to end through the facade."""

    @pytest.fixture(scope="class")
    def artifact(self, tmp_path_factory):
        from repro.experiments.model_freshness import freshness_spec

        tmp = str(tmp_path_factory.mktemp("online"))
        return Session(freshness_spec(fast=True, directory=tmp)).online()

    def test_hot_swapped_arm_strictly_dominates(self, artifact):
        assert artifact.freshness_dominates
        assert artifact.mean_online_auc > artifact.mean_frozen_auc

    def test_deltas_compress_at_least_5x(self, artifact):
        assert artifact.report.delta_compression >= 5.0

    def test_equal_serving_cost(self, artifact):
        online = artifact.fault_reports["online"]
        frozen = artifact.fault_reports["frozen"]
        # Same trace, same replica count: every request served by both.
        assert online.fleet.fleet.num_requests == frozen.fleet.fleet.num_requests
        assert len(online.swaps) == len(artifact.swap_events) > 0
        assert frozen.swaps == []

    def test_summary_shape(self, artifact):
        summary = artifact.summary()
        assert summary["freshness_dominates"] is True
        assert summary["num_swaps"] == len(artifact.swap_events)
        assert set(summary["arms"]) == {"online", "frozen"}
        assert summary["delta_compression"] >= 5.0
