"""Tests for GPU generation specs (paper Table 1) and memory tiers."""

import pytest

from repro.hardware import (
    A100,
    GB,
    GENERATIONS,
    GPUGeneration,
    H100,
    MemoryTierSpec,
    TIER_ORDER,
    TierTopology,
    V100,
    compute_network_gap,
    get_spec,
    memory_tiers,
    tier_topology,
)


class TestTable1Values:
    def test_v100_row(self):
        assert V100.peak_tflops == 15.7
        assert V100.scale_out_gbps == 100.0
        assert V100.scale_up_gbs == 150.0
        assert V100.year == 2019

    def test_a100_row(self):
        assert A100.peak_tflops == 156.0
        assert A100.scale_out_gbps == 200.0
        assert A100.scale_up_gbs == 300.0
        assert A100.year == 2022

    def test_h100_row(self):
        assert H100.peak_tflops == 989.0
        assert H100.scale_out_gbps == 400.0
        assert H100.scale_up_gbs == 450.0
        assert H100.year == 2023

    def test_compute_outpaces_network_claim(self):
        """§1: compute improved ~60x, scale-out only 4x (V100 -> H100)."""
        compute_growth, network_growth = compute_network_gap(V100, H100)
        assert compute_growth == pytest.approx(63.0, rel=0.01)
        assert network_growth == pytest.approx(4.0)
        assert compute_growth / network_growth > 15

    def test_scale_up_exceeds_scale_out_every_generation(self):
        """The NVLink/NIC asymmetry that motivates SPTT holds everywhere."""
        for spec in GENERATIONS.values():
            assert spec.scale_up_bytes_per_s > 5 * spec.scale_out_bytes_per_s


class TestUnitConversions:
    def test_scale_out_gbps_to_bytes(self):
        assert A100.scale_out_bytes_per_s == pytest.approx(25e9)

    def test_peak_flops(self):
        assert H100.peak_flops == pytest.approx(989e12)

    def test_effective_flops_below_peak(self):
        for spec in GENERATIONS.values():
            assert 0 < spec.effective_flops < spec.peak_flops

    def test_hbm_bandwidth_positive(self):
        for spec in GENERATIONS.values():
            assert spec.hbm_bytes_per_s > 1e11


class TestLookup:
    def test_get_spec_by_enum(self):
        assert get_spec(GPUGeneration.H100) is H100

    @pytest.mark.parametrize("name", ["v100", "V100", "a100", "H100", "h100"])
    def test_get_spec_by_string_case_insensitive(self, name):
        spec = get_spec(name)
        assert spec.generation.value == name.upper()

    def test_get_spec_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown GPU generation"):
            get_spec("B200")

    def test_specs_are_frozen(self):
        with pytest.raises(Exception):
            V100.peak_tflops = 1.0  # type: ignore[misc]


class TestDecimalGBConvention:
    """Every capacity/bandwidth conversion goes through GB = 1e9.

    One decimal-GB constant, no binary-GiB slips: a 2^30 mixed into a
    single tier would skew every cross-tier comparison by ~7%.
    """

    def test_gb_is_decimal(self):
        assert GB == 1e9
        assert GB != 2**30

    def test_gpu_byte_properties_use_gb(self):
        for spec in GENERATIONS.values():
            assert spec.hbm_capacity_bytes == spec.hbm_capacity_gb * GB
            assert spec.hbm_bytes_per_s == spec.hbm_gbs * GB
            assert spec.scale_up_bytes_per_s == spec.scale_up_gbs * GB
            # NIC rates arrive in Gbit/s: divide by 8, then decimal GB.
            assert spec.scale_out_bytes_per_s == pytest.approx(
                spec.scale_out_gbps / 8.0 * GB
            )

    @pytest.mark.parametrize("generation", ["V100", "A100", "H100"])
    def test_tier_byte_properties_use_gb(self, generation):
        for tier in memory_tiers(generation).values():
            assert tier.capacity_bytes == tier.capacity_gb * GB
            assert tier.bytes_per_s == tier.bandwidth_gbs * GB


class TestMemoryTiers:
    @pytest.mark.parametrize("generation", ["V100", "A100", "H100"])
    def test_presets_cover_canonical_order(self, generation):
        tiers = memory_tiers(generation)
        assert tuple(sorted(tiers)) == tuple(sorted(TIER_ORDER))

    def test_hbm_preset_matches_generation(self):
        spec = get_spec("A100")
        hbm = memory_tiers("A100")["hbm"]
        assert hbm.capacity_gb == spec.hbm_capacity_gb
        assert hbm.bandwidth_gbs == spec.hbm_gbs

    def test_remote_preset_rides_the_nic(self):
        spec = get_spec("H100")
        remote = memory_tiers("H100")["remote"]
        assert not remote.local
        assert remote.bytes_per_s == pytest.approx(
            spec.scale_out_bytes_per_s
        )

    def test_dollars_rank_hbm_most_expensive(self):
        tiers = memory_tiers("A100")
        assert tiers["hbm"].dollars_per_gb > tiers["dram"].dollars_per_gb
        assert tiers["dram"].dollars_per_gb > tiers["ssd"].dollars_per_gb

    def test_bad_tier_name_rejected(self):
        with pytest.raises(ValueError, match="unknown memory tier"):
            MemoryTierSpec(
                name="l2", capacity_gb=1.0, latency_s=0.0,
                bandwidth_gbs=1.0, dollars_per_gb=1.0,
            )

    def test_nonpositive_capacity_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            MemoryTierSpec(
                name="dram", capacity_gb=0.0, latency_s=0.0,
                bandwidth_gbs=1.0, dollars_per_gb=1.0,
            )


class TestTierTopology:
    @pytest.mark.parametrize("generation", ["V100", "A100", "H100"])
    def test_full_topology_constructs(self, generation):
        topo = tier_topology(generation)
        assert tuple(t.name for t in topo.tiers) == TIER_ORDER
        assert topo.remote is not None
        assert tuple(t.name for t in topo.local_tiers) == (
            "hbm", "dram", "ssd",
        )

    def test_local_monotonicity(self):
        """Latency up, bandwidth down, capacity up — across local tiers."""
        topo = tier_topology("A100")
        local = topo.local_tiers
        for fast, slow in zip(local, local[1:]):
            assert fast.latency_s <= slow.latency_s
            assert fast.bytes_per_s >= slow.bytes_per_s
            assert fast.capacity_bytes <= slow.capacity_bytes

    def test_remote_may_beat_local_ssd_on_device_latency(self):
        """The DRAM-backed remote PS is faster than NVMe at the device;
        its real cost is the NIC hop, priced on the serving path."""
        tiers = memory_tiers("A100")
        assert tiers["remote"].latency_s < tiers["ssd"].latency_s

    def test_subset_topology(self):
        topo = tier_topology("A100", names=("hbm", "dram"))
        assert tuple(t.name for t in topo.tiers) == ("hbm", "dram")
        assert topo.remote is None

    def test_misordered_names_rejected(self):
        with pytest.raises(ValueError, match="canonical"):
            tier_topology("A100", names=("dram", "hbm"))

    def test_duplicate_names_rejected(self):
        tiers = memory_tiers("A100")
        with pytest.raises(ValueError, match="duplicate tier names"):
            TierTopology(tiers=(tiers["hbm"], tiers["hbm"]))

    def test_get_by_name(self):
        topo = tier_topology("A100")
        assert topo.get("dram").name == "dram"
        with pytest.raises(KeyError):
            topo.get("l2")
