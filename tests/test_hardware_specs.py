"""Tests for GPU generation specs (paper Table 1)."""

import pytest

from repro.hardware import (
    A100,
    GENERATIONS,
    GPUGeneration,
    H100,
    V100,
    compute_network_gap,
    get_spec,
)


class TestTable1Values:
    def test_v100_row(self):
        assert V100.peak_tflops == 15.7
        assert V100.scale_out_gbps == 100.0
        assert V100.scale_up_gbs == 150.0
        assert V100.year == 2019

    def test_a100_row(self):
        assert A100.peak_tflops == 156.0
        assert A100.scale_out_gbps == 200.0
        assert A100.scale_up_gbs == 300.0
        assert A100.year == 2022

    def test_h100_row(self):
        assert H100.peak_tflops == 989.0
        assert H100.scale_out_gbps == 400.0
        assert H100.scale_up_gbs == 450.0
        assert H100.year == 2023

    def test_compute_outpaces_network_claim(self):
        """§1: compute improved ~60x, scale-out only 4x (V100 -> H100)."""
        compute_growth, network_growth = compute_network_gap(V100, H100)
        assert compute_growth == pytest.approx(63.0, rel=0.01)
        assert network_growth == pytest.approx(4.0)
        assert compute_growth / network_growth > 15

    def test_scale_up_exceeds_scale_out_every_generation(self):
        """The NVLink/NIC asymmetry that motivates SPTT holds everywhere."""
        for spec in GENERATIONS.values():
            assert spec.scale_up_bytes_per_s > 5 * spec.scale_out_bytes_per_s


class TestUnitConversions:
    def test_scale_out_gbps_to_bytes(self):
        assert A100.scale_out_bytes_per_s == pytest.approx(25e9)

    def test_peak_flops(self):
        assert H100.peak_flops == pytest.approx(989e12)

    def test_effective_flops_below_peak(self):
        for spec in GENERATIONS.values():
            assert 0 < spec.effective_flops < spec.peak_flops

    def test_hbm_bandwidth_positive(self):
        for spec in GENERATIONS.values():
            assert spec.hbm_bytes_per_s > 1e11


class TestLookup:
    def test_get_spec_by_enum(self):
        assert get_spec(GPUGeneration.H100) is H100

    @pytest.mark.parametrize("name", ["v100", "V100", "a100", "H100", "h100"])
    def test_get_spec_by_string_case_insensitive(self, name):
        spec = get_spec(name)
        assert spec.generation.value == name.upper()

    def test_get_spec_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown GPU generation"):
            get_spec("B200")

    def test_specs_are_frozen(self):
        with pytest.raises(Exception):
            V100.peak_tflops = 1.0  # type: ignore[misc]
