"""Property-based tests of the collective cost model's invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm import CollectiveCostModel, global_group, peer_groups
from repro.hardware import Cluster

GENS = ("V100", "A100", "H100")


@settings(max_examples=40, deadline=None)
@given(
    hosts=st.sampled_from([1, 2, 4, 8, 16]),
    gpus=st.sampled_from([1, 2, 4, 8]),
    gen=st.sampled_from(GENS),
    nbytes=st.integers(1, 1 << 30),
)
def test_alltoall_monotone_in_bytes(hosts, gpus, gen, nbytes):
    """More bytes never get cheaper."""
    model = CollectiveCostModel()
    group = global_group(Cluster(hosts, gpus, gen))
    t1 = model.alltoall(group, nbytes).seconds
    t2 = model.alltoall(group, 2 * nbytes).seconds
    assert t2 >= t1


@settings(max_examples=40, deadline=None)
@given(
    hosts=st.sampled_from([2, 4, 8, 32]),
    gen=st.sampled_from(GENS),
    nbytes=st.integers(1 << 20, 1 << 28),
)
def test_collectives_nonnegative_and_finite(hosts, gen, nbytes):
    model = CollectiveCostModel()
    group = global_group(Cluster(hosts, 8, gen))
    for fn in (model.alltoall, model.allreduce, model.reducescatter, model.allgather):
        t = fn(group, nbytes)
        assert t.seconds > 0
        assert t.seconds < 60  # sane upper bound for <= 256MB buffers


@settings(max_examples=30, deadline=None)
@given(
    hosts=st.sampled_from([2, 4, 8]),
    gen=st.sampled_from(GENS),
    nbytes=st.integers(1 << 22, 1 << 28),
)
def test_bus_bandwidth_bounded_by_line_rates(hosts, gen, nbytes):
    """Achieved bus bandwidth can never exceed the NVLink line rate."""
    cluster = Cluster(hosts, 8, gen)
    model = CollectiveCostModel()
    group = global_group(cluster)
    bw = model.alltoall(group, nbytes).bus_bandwidth("alltoall")
    assert bw <= cluster.spec.scale_up_bytes_per_s * 1.01


@settings(max_examples=30, deadline=None)
@given(
    hosts=st.sampled_from([2, 4, 8, 32]),
    gen=st.sampled_from(GENS),
    shard=st.integers(1 << 14, 1 << 20),
)
def test_reducescatter_plus_allgather_bounds_allreduce(hosts, gen, shard):
    """AllReduce = ReduceScatter + AllGather in ring algebra: the sum
    of the two halves matches the full ring's bandwidth term.  Per the
    per-rank-payload convention, ReduceScatter takes the full buffer
    and AllGather the per-rank shard of the same exchange."""
    model = CollectiveCostModel()
    group = global_group(Cluster(hosts, 8, gen))
    nbytes = shard * group.world_size
    ar = model.allreduce(group, nbytes)
    rs = model.reducescatter(group, nbytes)
    ag = model.allgather(group, shard)
    bw_sum = (rs.seconds - rs.latency_seconds) + (ag.seconds - ag.latency_seconds)
    bw_ar = ar.seconds - ar.latency_seconds
    assert bw_sum == pytest.approx(bw_ar, rel=1e-9)


@settings(max_examples=20, deadline=None)
@given(
    hosts=st.sampled_from([4, 8, 16, 64]),
    nbytes=st.integers(1 << 22, 1 << 28),
)
def test_peer_alltoall_never_slower_than_global(hosts, nbytes):
    """The §3.1.2 property holds across the whole parameter space:
    same per-rank bytes, world H instead of G -> never slower."""
    cluster = Cluster(hosts, 8, "A100")
    model = CollectiveCostModel()
    t_global = model.alltoall(global_group(cluster), nbytes).seconds
    t_peer = model.alltoall(peer_groups(cluster)[0], nbytes).seconds
    assert t_peer <= t_global * 1.001


@settings(max_examples=20, deadline=None)
@given(
    gen=st.sampled_from(GENS),
    nbytes=st.integers(1 << 20, 1 << 26),
)
def test_faster_generation_never_slower(gen, nbytes):
    """H100's links dominate V100's: any collective is at least as
    fast on the newer fabric at equal shape."""
    model = CollectiveCostModel()
    old = global_group(Cluster(8, 8, "V100"))
    new = global_group(Cluster(8, 8, "H100"))
    assert (
        model.alltoall(new, nbytes).seconds
        <= model.alltoall(old, nbytes).seconds * 1.001
    )


@settings(max_examples=40, deadline=None)
@given(
    hosts=st.sampled_from([1, 2, 4, 8]),
    gpus=st.sampled_from([1, 2, 4, 8]),
    gen=st.sampled_from(GENS),
    small=st.integers(0, 1 << 28),
    extra=st.integers(1, 1 << 28),
)
def test_every_collective_monotone_in_bytes(hosts, gpus, gen, small, extra):
    """Monotonicity holds for *all* primitives, not just AlltoAll:
    adding payload can never make any collective cheaper."""
    model = CollectiveCostModel()
    group = global_group(Cluster(hosts, gpus, gen))
    for fn in (
        model.alltoall,
        model.allreduce,
        model.reducescatter,
        model.allgather,
    ):
        assert fn(group, small + extra).seconds >= fn(group, small).seconds
    src, dst = 0, group.world_size - 1
    assert (
        model.point_to_point(group, src, dst, small + extra).seconds
        >= model.point_to_point(group, src, dst, small).seconds
    )


@settings(max_examples=40, deadline=None)
@given(
    hosts=st.sampled_from([2, 4, 8]),
    gpus=st.sampled_from([2, 4, 8]),
    gen=st.sampled_from(GENS),
    nbytes=st.integers(1, 1 << 28),
    seed=st.integers(0, 2**16),
)
def test_point_to_point_payload_symmetry(hosts, gpus, gen, nbytes, seed):
    """A message's price depends on the payload and the link it
    crosses, never on which end sent it: p2p(src, dst) == p2p(dst, src)
    for any pair, same-host or cross-host."""
    import numpy as np

    cluster = Cluster(hosts, gpus, gen)
    group = global_group(cluster)
    rng = np.random.default_rng(seed)
    src, dst = rng.integers(0, group.world_size, size=2)
    p2p = CollectiveCostModel().point_to_point
    a = p2p(group, int(src), int(dst), nbytes)
    b = p2p(group, int(dst), int(src), nbytes)
    assert a.seconds == b.seconds
    assert a.bottleneck == b.bottleneck
    assert a.nvlink_seconds == b.nvlink_seconds
    assert a.nic_seconds == b.nic_seconds


@settings(max_examples=30, deadline=None)
@given(
    hosts=st.sampled_from([1, 2, 4, 8]),
    gpus=st.sampled_from([2, 4, 8]),
    gen=st.sampled_from(GENS),
    nbytes=st.integers(1, 1 << 26),
)
def test_collective_payload_uniformity(hosts, gpus, gen, nbytes):
    """Collectives take one per-rank payload: the timing object echoes
    it back unchanged (the convention every caller prices against)."""
    model = CollectiveCostModel()
    group = global_group(Cluster(hosts, gpus, gen))
    for fn in (model.alltoall, model.allreduce, model.reducescatter):
        timing = fn(group, nbytes)
        assert timing.bytes_per_rank == nbytes
        assert timing.world_size == group.world_size
