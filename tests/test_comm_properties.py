"""Property-based tests of the collective cost model's invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm import CollectiveCostModel, global_group, peer_groups
from repro.hardware import Cluster

GENS = ("V100", "A100", "H100")


@settings(max_examples=40, deadline=None)
@given(
    hosts=st.sampled_from([1, 2, 4, 8, 16]),
    gpus=st.sampled_from([1, 2, 4, 8]),
    gen=st.sampled_from(GENS),
    nbytes=st.integers(1, 1 << 30),
)
def test_alltoall_monotone_in_bytes(hosts, gpus, gen, nbytes):
    """More bytes never get cheaper."""
    model = CollectiveCostModel()
    group = global_group(Cluster(hosts, gpus, gen))
    t1 = model.alltoall(group, nbytes).seconds
    t2 = model.alltoall(group, 2 * nbytes).seconds
    assert t2 >= t1


@settings(max_examples=40, deadline=None)
@given(
    hosts=st.sampled_from([2, 4, 8, 32]),
    gen=st.sampled_from(GENS),
    nbytes=st.integers(1 << 20, 1 << 28),
)
def test_collectives_nonnegative_and_finite(hosts, gen, nbytes):
    model = CollectiveCostModel()
    group = global_group(Cluster(hosts, 8, gen))
    for fn in (model.alltoall, model.allreduce, model.reducescatter, model.allgather):
        t = fn(group, nbytes)
        assert t.seconds > 0
        assert t.seconds < 60  # sane upper bound for <= 256MB buffers


@settings(max_examples=30, deadline=None)
@given(
    hosts=st.sampled_from([2, 4, 8]),
    gen=st.sampled_from(GENS),
    nbytes=st.integers(1 << 22, 1 << 28),
)
def test_bus_bandwidth_bounded_by_line_rates(hosts, gen, nbytes):
    """Achieved bus bandwidth can never exceed the NVLink line rate."""
    cluster = Cluster(hosts, 8, gen)
    model = CollectiveCostModel()
    group = global_group(cluster)
    bw = model.alltoall(group, nbytes).bus_bandwidth("alltoall")
    assert bw <= cluster.spec.scale_up_bytes_per_s * 1.01


@settings(max_examples=30, deadline=None)
@given(
    hosts=st.sampled_from([2, 4, 8, 32]),
    gen=st.sampled_from(GENS),
    shard=st.integers(1 << 14, 1 << 20),
)
def test_reducescatter_plus_allgather_bounds_allreduce(hosts, gen, shard):
    """AllReduce = ReduceScatter + AllGather in ring algebra: the sum
    of the two halves matches the full ring's bandwidth term.  Per the
    per-rank-payload convention, ReduceScatter takes the full buffer
    and AllGather the per-rank shard of the same exchange."""
    model = CollectiveCostModel()
    group = global_group(Cluster(hosts, 8, gen))
    nbytes = shard * group.world_size
    ar = model.allreduce(group, nbytes)
    rs = model.reducescatter(group, nbytes)
    ag = model.allgather(group, shard)
    bw_sum = (rs.seconds - rs.latency_seconds) + (ag.seconds - ag.latency_seconds)
    bw_ar = ar.seconds - ar.latency_seconds
    assert bw_sum == pytest.approx(bw_ar, rel=1e-9)


@settings(max_examples=20, deadline=None)
@given(
    hosts=st.sampled_from([4, 8, 16, 64]),
    nbytes=st.integers(1 << 22, 1 << 28),
)
def test_peer_alltoall_never_slower_than_global(hosts, nbytes):
    """The §3.1.2 property holds across the whole parameter space:
    same per-rank bytes, world H instead of G -> never slower."""
    cluster = Cluster(hosts, 8, "A100")
    model = CollectiveCostModel()
    t_global = model.alltoall(global_group(cluster), nbytes).seconds
    t_peer = model.alltoall(peer_groups(cluster)[0], nbytes).seconds
    assert t_peer <= t_global * 1.001


@settings(max_examples=20, deadline=None)
@given(
    gen=st.sampled_from(GENS),
    nbytes=st.integers(1 << 20, 1 << 26),
)
def test_faster_generation_never_slower(gen, nbytes):
    """H100's links dominate V100's: any collective is at least as
    fast on the newer fabric at equal shape."""
    model = CollectiveCostModel()
    old = global_group(Cluster(8, 8, "V100"))
    new = global_group(Cluster(8, 8, "H100"))
    assert (
        model.alltoall(new, nbytes).seconds
        <= model.alltoall(old, nbytes).seconds * 1.001
    )
