"""SPTT semantic-preservation tests — the Table 3 claim, made exact.

The flat pipeline (Figure 4) and the SPTT pipeline (Figure 7) must
deliver *bit-identical* embeddings to every rank, and route *identical*
gradients back into every table, because SPTT only re-orchestrates
dataflow.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.flat_pipeline import FlatEmbeddingExchange
from repro.core.partition import FeaturePartition
from repro.core.sptt import SPTTEmbeddingExchange
from repro.hardware import Cluster
from repro.nn import EmbeddingBagCollection
from repro.models import tiny_table_configs
from repro.sim import Phase, SimCluster


def make_setup(hosts=2, gpus=2, F=6, dim=4, rows=16, pooling=1, seed=0):
    cluster = Cluster(num_hosts=hosts, gpus_per_host=gpus, generation="A100")
    sim = SimCluster(cluster)
    ebc = EmbeddingBagCollection(
        tiny_table_configs(F, num_embeddings=rows, dim=dim, pooling=pooling),
        rng=np.random.default_rng(seed),
    )
    return sim, ebc


def make_ids(sim, F, B=3, rows=16, pooling=1, seed=1):
    rng = np.random.default_rng(seed)
    shape = (B, F) if pooling == 1 else (B, F, pooling)
    return {r: rng.integers(0, rows, size=shape) for r in range(sim.world_size)}


def sptt_plan_matching_flat(sptt):
    """Flat plan with the same feature->rank ownership as the SPTT plan."""
    plan = [0] * sptt.num_features
    for rank, feats in sptt.features_of.items():
        for f in feats:
            plan[f] = rank
    return plan


class TestSPTTForwardEquality:
    @pytest.mark.parametrize(
        "hosts,gpus,F",
        [(2, 2, 4), (2, 2, 6), (4, 2, 8), (2, 4, 8), (3, 2, 7), (2, 1, 4)],
    )
    def test_bitwise_equal_to_flat(self, hosts, gpus, F):
        sim_flat, ebc = make_setup(hosts, gpus, F)
        partition = FeaturePartition.contiguous(F, hosts)
        sim_sptt = SimCluster(sim_flat.cluster)
        sptt = SPTTEmbeddingExchange(sim_sptt, ebc, partition)
        flat = FlatEmbeddingExchange(sim_flat, ebc, sptt_plan_matching_flat(sptt))

        ids = make_ids(sim_flat, F)
        out_flat = flat.forward(ids)
        out_sptt = sptt.forward(ids)
        for r in range(sim_flat.world_size):
            np.testing.assert_array_equal(out_flat[r], out_sptt[r])

    def test_multi_hot_pooling_equal(self):
        sim_flat, ebc = make_setup(F=4, pooling=3)
        partition = FeaturePartition.contiguous(4, 2)
        sim_sptt = SimCluster(sim_flat.cluster)
        sptt = SPTTEmbeddingExchange(sim_sptt, ebc, partition)
        flat = FlatEmbeddingExchange(sim_flat, ebc, sptt_plan_matching_flat(sptt))
        ids = make_ids(sim_flat, 4, pooling=3)
        out_flat = flat.forward(ids)
        out_sptt = sptt.forward(ids)
        for r in out_flat:
            np.testing.assert_array_equal(out_flat[r], out_sptt[r])

    def test_scrambled_partition_equal(self):
        """Partition order must not matter for semantics."""
        F = 8
        sim_flat, ebc = make_setup(hosts=2, gpus=2, F=F)
        partition = FeaturePartition.from_groups([[7, 0, 3, 5], [2, 6, 1, 4]])
        sim_sptt = SimCluster(sim_flat.cluster)
        sptt = SPTTEmbeddingExchange(sim_sptt, ebc, partition)
        flat = FlatEmbeddingExchange(sim_flat, ebc, sptt_plan_matching_flat(sptt))
        ids = make_ids(sim_flat, F)
        out_flat = flat.forward(ids)
        out_sptt = sptt.forward(ids)
        for r in out_flat:
            np.testing.assert_array_equal(out_flat[r], out_sptt[r])

    def test_lookup_values_correct(self):
        """SPTT output actually contains the right table rows."""
        sim, ebc = make_setup(hosts=2, gpus=2, F=4)
        partition = FeaturePartition.contiguous(4, 2)
        sptt = SPTTEmbeddingExchange(sim, ebc, partition)
        ids = make_ids(sim, 4)
        out = sptt.forward(ids)
        for r, id_arr in ids.items():
            for b in range(id_arr.shape[0]):
                for f in range(4):
                    np.testing.assert_array_equal(
                        out[r][b, f], ebc.tables[f].weight.data[id_arr[b, f]]
                    )


class TestSPTTBackwardEquality:
    def test_gradients_match_flat(self):
        F, B = 6, 3
        sim_flat, ebc = make_setup(hosts=2, gpus=2, F=F)
        partition = FeaturePartition.contiguous(F, 2)
        sim_sptt = SimCluster(sim_flat.cluster)
        sptt = SPTTEmbeddingExchange(sim_sptt, ebc, partition)
        flat = FlatEmbeddingExchange(sim_flat, ebc, sptt_plan_matching_flat(sptt))
        ids = make_ids(sim_flat, F, B=B)
        rng = np.random.default_rng(5)
        grads = {
            r: rng.standard_normal((B, F, ebc.dim))
            for r in range(sim_flat.world_size)
        }

        flat.forward(ids)
        for t in ebc.tables:
            t.weight.zero_grad()
        flat.backward(grads)
        flat_grads = [t.weight.grad.copy() for t in ebc.tables]

        sptt.forward(ids)
        for t in ebc.tables:
            t.weight.zero_grad()
        sptt.backward(grads)
        sptt_grads = [t.weight.grad.copy() for t in ebc.tables]

        for f, (a, b) in enumerate(zip(flat_grads, sptt_grads)):
            np.testing.assert_array_equal(a, b, err_msg=f"table {f}")

    def test_backward_before_forward_raises(self):
        sim, ebc = make_setup(F=4)
        sptt = SPTTEmbeddingExchange(sim, ebc, FeaturePartition.contiguous(4, 2))
        with pytest.raises(RuntimeError):
            sptt.backward({r: np.zeros((2, 4, 4)) for r in range(4)})


class TestSPTTStructure:
    def test_tower_host_mismatch_rejected(self):
        sim, ebc = make_setup(hosts=2, gpus=2, F=6)
        with pytest.raises(ValueError, match="towers"):
            SPTTEmbeddingExchange(sim, ebc, FeaturePartition.contiguous(6, 3))

    def test_feature_count_mismatch_rejected(self):
        sim, ebc = make_setup(hosts=2, gpus=2, F=6)
        with pytest.raises(ValueError, match="features"):
            SPTTEmbeddingExchange(sim, ebc, FeaturePartition.contiguous(5, 2))

    def test_tables_assigned_within_tower_host(self):
        sim, ebc = make_setup(hosts=2, gpus=2, F=8)
        partition = FeaturePartition.contiguous(8, 2)
        sptt = SPTTEmbeddingExchange(sim, ebc, partition)
        for rank, feats in sptt.features_of.items():
            host = sim.cluster.host_of(rank)
            for f in feats:
                assert partition.group_of(f) == host

    def test_peer_alltoall_world_is_num_hosts(self):
        """§3.1.1: step (f) runs in worlds of size T = G // L."""
        sim, ebc = make_setup(hosts=4, gpus=2, F=8)
        sptt = SPTTEmbeddingExchange(sim, ebc, FeaturePartition.contiguous(8, 4))
        sptt.forward(make_ids(sim, 8))
        peer_events = [
            e for e in sim.timeline.events if e.label == "sptt.peer_a2a"
        ]
        assert len(peer_events) == 1
        assert peer_events[0].world_size == 4  # hosts, not 8 GPUs

    def test_intra_host_comm_cheaper_than_flat_output_dist(self):
        """The topology win: step (d) rides NVLink."""
        sim_flat, ebc = make_setup(hosts=2, gpus=2, F=8)
        partition = FeaturePartition.contiguous(8, 2)
        sim_sptt = SimCluster(sim_flat.cluster)
        sptt = SPTTEmbeddingExchange(sim_sptt, ebc, partition)
        flat = FlatEmbeddingExchange(sim_flat, ebc, sptt_plan_matching_flat(sptt))
        ids = make_ids(sim_flat, 8)
        flat.forward(ids)
        sptt.forward(ids)
        flat_output_dist = sum(
            e.seconds for e in sim_flat.timeline.events if e.label == "output_dist"
        )
        intra = sum(
            e.seconds
            for e in sim_sptt.timeline.events
            if e.label == "sptt.intra_host"
        )
        assert intra < flat_output_dist


@settings(max_examples=10, deadline=None)
@given(
    hosts=st.integers(2, 3),
    gpus=st.integers(1, 3),
    extra=st.integers(0, 5),
    batch=st.integers(1, 4),
    seed=st.integers(0, 1000),
)
def test_sptt_flat_equality_property(hosts, gpus, extra, batch, seed):
    """Property: SPTT == flat for arbitrary shapes and seeds."""
    F = hosts * gpus + extra  # at least one feature per rank's tower
    sim_flat, ebc = make_setup(hosts=hosts, gpus=gpus, F=F, seed=seed)
    partition = FeaturePartition.contiguous(F, hosts)
    sim_sptt = SimCluster(sim_flat.cluster)
    sptt = SPTTEmbeddingExchange(sim_sptt, ebc, partition)
    flat = FlatEmbeddingExchange(sim_flat, ebc, sptt_plan_matching_flat(sptt))
    ids = make_ids(sim_flat, F, B=batch, seed=seed + 1)
    out_flat = flat.forward(ids)
    out_sptt = sptt.forward(ids)
    for r in out_flat:
        np.testing.assert_array_equal(out_flat[r], out_sptt[r])
