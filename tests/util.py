"""Shared test helpers: numerical gradient checking."""

from __future__ import annotations

from typing import Callable

import numpy as np


def numeric_grad(
    f: Callable[[np.ndarray], float], x: np.ndarray, eps: float = 1e-6
) -> np.ndarray:
    """Central-difference gradient of a scalar function at x."""
    x = x.astype(np.float64)
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = f(x)
        flat[i] = orig - eps
        lo = f(x)
        flat[i] = orig
        gflat[i] = (hi - lo) / (2 * eps)
    return grad


def check_module_gradients(
    module, x: np.ndarray, rng: np.random.Generator, atol: float = 1e-6
) -> None:
    """Verify analytic input+parameter grads against central differences.

    Uses a random linear functional of the module output as the scalar
    loss so every output element participates.
    """
    out = module(x)
    proj = rng.standard_normal(out.shape)

    def loss_given_input(x_val: np.ndarray) -> float:
        return float((module(x_val) * proj).sum())

    module.zero_grad()
    module(x)
    grad_in = module.backward(proj)
    num_in = numeric_grad(loss_given_input, x.copy())
    np.testing.assert_allclose(grad_in, num_in, atol=atol, rtol=1e-4)

    for name, p in module.named_parameters():
        analytic = p.grad.copy() if p.grad is not None else np.zeros_like(p.data)

        def loss_given_param(val: np.ndarray, p=p) -> float:
            old = p.data
            p.data = val
            try:
                return float((module(x) * proj).sum())
            finally:
                p.data = old

        num_p = numeric_grad(loss_given_param, p.data.copy())
        np.testing.assert_allclose(
            analytic, num_p, atol=atol, rtol=1e-4, err_msg=f"param {name}"
        )
