"""repro-lint engine + rule fixtures.

Each rule gets a positive snippet (must fire), a negative snippet
(must stay silent), and a suppression snippet (justified inline
disable swallows the finding).  The suppression meta-rules
(``unjustified-suppression`` / ``unused-suppression``) and the
Diagnostic JSON contract are covered alongside, and the final test
asserts the repository's own ``src`` tree lints clean — the
ISSUE-level acceptance bar.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.analysis import (
    Diagnostic,
    count_by_severity,
    diagnostics_from_json,
    diagnostics_to_json,
    lint_paths,
    lint_source,
    registered_rules,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")


def codes(diagnostics):
    return [d.code for d in diagnostics]


# ----------------------------------------------------------------------
class TestDiagnostic:
    def test_format_carries_location_code_and_hint(self):
        diag = Diagnostic(
            severity="error",
            code="unseeded-rng",
            message="np.random.rand() bypasses the seeded Generator",
            path="src/foo.py",
            line=12,
            hint="thread a np.random.default_rng(seed) through",
        )
        text = diag.format()
        assert "src/foo.py:12" in text
        assert "error[unseeded-rng]" in text
        assert "hint:" in text

    def test_rejects_unknown_severity(self):
        with pytest.raises(ValueError, match="severity"):
            Diagnostic(severity="fatal", code="x", message="m")

    def test_json_round_trip(self):
        diags = [
            Diagnostic(
                severity="warning",
                code="probe-samples-truncated",
                message="m",
                path="partition.probe_samples",
                source="spec",
            ),
            Diagnostic(
                severity="error", code="bare-except", message="m",
                path="a.py", line=3,
            ),
        ]
        assert diagnostics_from_json(diagnostics_to_json(diags)) == diags

    def test_to_dict_drops_empty_fields(self):
        out = Diagnostic(severity="info", code="c", message="m").to_dict()
        assert "line" not in out and "hint" not in out and "data" not in out

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown"):
            Diagnostic.from_dict(
                {"severity": "error", "code": "c", "message": "m",
                 "column": 4}
            )

    def test_count_by_severity(self):
        diags = [
            Diagnostic(severity="error", code="a", message="m"),
            Diagnostic(severity="error", code="b", message="m"),
            Diagnostic(severity="warning", code="c", message="m"),
        ]
        assert count_by_severity(diags) == {
            "error": 2, "warning": 1, "info": 0,
        }


# ----------------------------------------------------------------------
class TestRuleRegistry:
    def test_the_eight_repo_rules_are_registered(self):
        expected = {
            "unseeded-rng",
            "wallclock-in-sim",
            "float-equality",
            "mutable-default",
            "spec-knob-drift",
            "dict-order-hazard",
            "missing-all-export",
            "bare-except",
        }
        assert expected <= set(registered_rules())

    def test_every_rule_documents_itself(self):
        for code, cls in registered_rules().items():
            assert cls.summary, code
            assert cls.hint, code


# ----------------------------------------------------------------------
class TestUnseededRng:
    def test_flags_np_random_module_calls(self):
        diags = lint_source("import numpy as np\nx = np.random.rand(3)\n")
        assert codes(diags) == ["unseeded-rng"]
        assert diags[0].line == 2

    def test_flags_stdlib_random_import(self):
        assert codes(lint_source("import random\n")) == ["unseeded-rng"]
        assert codes(lint_source("from random import shuffle\n")) == [
            "unseeded-rng"
        ]

    def test_accepts_seeded_generator(self):
        src = (
            "import numpy as np\n"
            "rng = np.random.default_rng(7)\n"
            "x = rng.standard_normal(3)\n"
        )
        assert lint_source(src) == []

    def test_suppression_with_reason_is_honored(self):
        src = (
            "import numpy as np\n"
            "x = np.random.rand()  "
            "# repro-lint: disable=unseeded-rng -- fixture exercising "
            "the unseeded path\n"
        )
        assert lint_source(src) == []


class TestWallclockInSim:
    def test_flags_time_time(self):
        src = "import time\nstart = time.time()\n"
        assert codes(lint_source(src)) == ["wallclock-in-sim"]

    def test_flags_perf_counter_and_datetime_now(self):
        assert codes(
            lint_source("import time\nt = time.perf_counter()\n")
        ) == ["wallclock-in-sim"]
        assert codes(
            lint_source(
                "import datetime\nnow = datetime.datetime.now()\n"
            )
        ) == ["wallclock-in-sim"]

    def test_flags_names_bound_via_from_import(self):
        src = "from time import monotonic\nt = monotonic()\n"
        assert codes(lint_source(src)) == ["wallclock-in-sim"]

    def test_accepts_simulated_timeline(self):
        src = (
            "def price(sim):\n"
            "    return sim.timeline.total_time_s()\n"
        )
        assert lint_source(src) == []


class TestFloatEquality:
    def test_flags_float_literal_comparison(self):
        assert codes(lint_source("ok = x == 0.3\n")) == ["float-equality"]
        assert codes(lint_source("bad = 1.5 != y\n")) == ["float-equality"]

    def test_accepts_int_comparison_and_tolerance(self):
        assert lint_source("ok = n == 3\n") == []
        assert lint_source("ok = abs(x - 0.3) < 1e-9\n") == []


class TestMutableDefault:
    def test_flags_function_list_default(self):
        src = "def f(acc=[]):\n    return acc\n"
        assert codes(lint_source(src)) == ["mutable-default"]

    def test_flags_dataclass_field_call_default(self):
        src = (
            "from dataclasses import dataclass\n"
            "from collections import defaultdict\n"
            "@dataclass\n"
            "class C:\n"
            "    counts: dict = defaultdict(int)\n"
        )
        assert codes(lint_source(src)) == ["mutable-default"]

    def test_accepts_field_default_factory_and_class_constants(self):
        src = (
            "from dataclasses import dataclass, field\n"
            "@dataclass\n"
            "class C:\n"
            "    _TABLE = {'a': 1}\n"  # class constant, not a field
            "    items: list = field(default_factory=list)\n"
        )
        assert lint_source(src) == []

    def test_accepts_classvar_annotation(self):
        src = (
            "from dataclasses import dataclass\n"
            "from typing import ClassVar, Dict\n"
            "@dataclass\n"
            "class C:\n"
            "    registry: ClassVar[Dict[str, int]] = {}\n"
        )
        assert lint_source(src) == []


class TestSpecKnobDrift:
    def _mods(self, spec_src, consumer_src):
        from repro.analysis.lint import ModuleUnderLint, lint_modules
        import ast

        mods = []
        for name, src in (
            ("api/spec.py", spec_src),
            ("api/session.py", consumer_src),
        ):
            mods.append(
                ModuleUnderLint(
                    path=name,
                    display_path=name,
                    text=src,
                    tree=ast.parse(src),
                    lines=src.splitlines(),
                    suppressions=[],
                )
            )
        return lint_modules(mods, select={"spec-knob-drift"})

    def test_flags_field_no_one_reads(self):
        spec_src = (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class TrainSpec:\n"
            "    batch_size: int = 256\n"
            "    dead_knob: int = 0\n"
        )
        consumer = "def go(spec):\n    return spec.batch_size\n"
        diags = self._mods(spec_src, consumer)
        assert codes(diags) == ["spec-knob-drift"]
        assert "dead_knob" in diags[0].message

    def test_reads_via_keyword_and_string_count(self):
        spec_src = (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class ServeSpec:\n"
            "    qps: float = 1.0\n"
            "    router: str = 'round_robin'\n"
        )
        consumer = (
            "def go(spec, make):\n"
            "    return make(qps=spec.qps), getattr(spec, 'router')\n"
        )
        assert self._mods(spec_src, consumer) == []

    def test_repo_spec_has_no_dead_knobs(self):
        diags, _ = lint_paths([SRC], select={"spec-knob-drift"})
        assert diags == []


class TestDictOrderHazard:
    def test_flags_iteration_over_set_literal(self):
        src = "for item in {3, 1, 2}:\n    print(item)\n"
        assert codes(lint_source(src)) == ["dict-order-hazard"]

    def test_flags_comprehension_over_set_call(self):
        src = "out = [k for k in set(names)]\n"
        assert codes(lint_source(src)) == ["dict-order-hazard"]

    def test_accepts_sorted_wrapping(self):
        src = "for item in sorted({3, 1, 2}):\n    print(item)\n"
        assert lint_source(src) == []

    def test_accepts_order_free_reductions(self):
        assert lint_source("total = sum(x for x in {1, 2})\n") == []
        assert lint_source("s = {x * 2 for x in set(names)}\n") == []


class TestMissingAllExport:
    def test_flags_stale_all_entry(self):
        src = "__all__ = ['gone']\n"
        assert codes(lint_source(src)) == ["missing-all-export"]

    def test_getattr_lazy_exports_are_allowed(self):
        src = (
            "__all__ = ['Lazy']\n"
            "def __getattr__(name):\n"
            "    raise AttributeError(name)\n"
        )
        assert lint_source(src) == []

    def test_init_must_list_public_bindings(self):
        src = "from os import path\n__all__ = []\n"
        diags = lint_source(src, filename="pkg/__init__.py")
        assert codes(diags) == ["missing-all-export"]
        assert "path" in diags[0].message

    def test_non_init_modules_may_keep_private_surface(self):
        src = "from os import path\n__all__ = []\n"
        assert lint_source(src, filename="pkg/helpers.py") == []


class TestBareExcept:
    def test_flags_bare_except(self):
        src = "try:\n    x = 1\nexcept:\n    pass\n"
        assert codes(lint_source(src)) == ["bare-except"]

    def test_accepts_typed_except(self):
        src = "try:\n    x = 1\nexcept ValueError:\n    pass\n"
        assert lint_source(src) == []


# ----------------------------------------------------------------------
class TestSuppressionDiscipline:
    def test_unjustified_suppression_is_itself_an_error(self):
        src = (
            "import time\n"
            "t = time.time()  # repro-lint: disable=wallclock-in-sim\n"
        )
        got = codes(lint_source(src))
        assert got == ["unjustified-suppression"]

    def test_unused_suppression_is_itself_an_error(self):
        src = "x = 1  # repro-lint: disable=bare-except -- stale\n"
        assert codes(lint_source(src)) == ["unused-suppression"]

    def test_comment_line_marker_governs_next_line(self):
        src = (
            "import time\n"
            "# repro-lint: disable=wallclock-in-sim -- fixture\n"
            "t = time.time()\n"
        )
        assert lint_source(src) == []

    def test_suppressing_one_code_leaves_others(self):
        src = (
            "import time\n"
            "t = time.time() if x == 0.5 else 0  "
            "# repro-lint: disable=wallclock-in-sim -- fixture\n"
        )
        assert codes(lint_source(src)) == ["float-equality"]


# ----------------------------------------------------------------------
class TestEngine:
    def test_select_restricts_rules(self):
        src = "import random\nt = __import__('time').time()\n"
        only = lint_source(src, select={"unseeded-rng"})
        assert codes(only) == ["unseeded-rng"]

    def test_parse_error_becomes_diagnostic(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        ok = tmp_path / "ok.py"
        ok.write_text("x = 1\n")
        diags, checked = lint_paths([str(tmp_path)])
        assert checked == 2
        assert codes(diags) == ["parse-error"]

    def test_diagnostics_sorted_by_location(self):
        src = (
            "import random\n"
            "try:\n"
            "    pass\n"
            "except:\n"
            "    pass\n"
        )
        diags = lint_source(src)
        assert [d.line for d in diags] == sorted(d.line for d in diags)


# ----------------------------------------------------------------------
class TestCli:
    def _run(self, *args):
        env = dict(os.environ, PYTHONPATH=SRC)
        return subprocess.run(
            [sys.executable, "-m", "repro.analysis", *args],
            capture_output=True,
            text=True,
            env=env,
            cwd=REPO_ROOT,
        )

    def test_json_format_and_exit_codes(self, tmp_path):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import random\n")
        proc = self._run(str(dirty), "--format", "json")
        assert proc.returncode == 1
        payload = json.loads(proc.stdout)
        assert payload[0]["code"] == "unseeded-rng"

        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert self._run(str(clean)).returncode == 0

    def test_out_writes_artifact(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        out = tmp_path / "diags.json"
        proc = self._run(str(clean), "--out", str(out))
        assert proc.returncode == 0
        assert json.loads(out.read_text()) == []

    def test_list_rules(self):
        proc = self._run("--list-rules")
        assert proc.returncode == 0
        assert "unseeded-rng" in proc.stdout


# ----------------------------------------------------------------------
class TestRepositoryIsClean:
    def test_src_tree_lints_clean(self):
        """The ISSUE acceptance bar: zero non-suppressed violations and
        zero unexplained suppressions over the real codebase."""
        diags, checked = lint_paths([SRC])
        assert checked > 50
        assert diags == [], "\n".join(d.format() for d in diags)
