"""Distributed trainer tests: hybrid baseline and DMT vs single-process.

The strongest integration claim in the repo: one simulated distributed
training step (model-parallel tables + data-parallel dense + SPTT +
tower modules + intra-host tower sync) produces the same losses and the
same parameters as single-process training on the concatenated global
batch, to floating-point summation tolerance.
"""

import numpy as np
import pytest

from repro.core.dmt_pipeline import DistributedDMTTrainer, DistributedHybridTrainer
from repro.core.partition import FeaturePartition
from repro.hardware import Cluster
from repro.models import DCN, DLRM, DMTDCN, DMTDLRM, tiny_table_configs
from repro.models.configs import tiny_dcn_arch, tiny_dlrm_arch
from repro.nn import Adam, BCEWithLogitsLoss, SGD
from repro.sim import Phase, SimCluster

F, N, DENSE = 6, 8, 4
ROWS = 16


def make_cluster(hosts=2, gpus=2):
    return SimCluster(Cluster(num_hosts=hosts, gpus_per_host=gpus, generation="A100"))


def make_batch(sim, B_local=3, seed=2):
    rng = np.random.default_rng(seed)
    G = sim.world_size
    dense = rng.standard_normal((G * B_local, DENSE))
    ids = rng.integers(0, ROWS, size=(G * B_local, F))
    labels = rng.integers(0, 2, size=G * B_local).astype(float)
    return dense, ids, labels


def single_process_step(model, dense, ids, labels, lr=0.05):
    loss_mod = BCEWithLogitsLoss()
    model.zero_grad()
    logits = model(dense, ids)
    loss = loss_mod(logits, labels)
    model.backward(loss_mod.backward())
    return loss


def copy_model(ctor):
    """Construct twice with the same seed -> identical weights."""
    return ctor(np.random.default_rng(17)), ctor(np.random.default_rng(17))


class TestHybridTrainerEquivalence:
    @pytest.mark.parametrize("model_kind", ["dlrm", "dcn"])
    def test_losses_and_grads_match_single_process(self, model_kind):
        sim = make_cluster()

        def ctor(rng):
            if model_kind == "dlrm":
                return DLRM(
                    DENSE,
                    tiny_table_configs(F, ROWS, N),
                    tiny_dlrm_arch(N),
                    rng=rng,
                )
            return DCN(
                DENSE, tiny_table_configs(F, ROWS, N), tiny_dcn_arch(N), rng=rng
            )

        dist_model, ref_model = copy_model(ctor)
        trainer = DistributedHybridTrainer(sim, dist_model)
        dense, ids, labels = make_batch(sim)

        dist_model.zero_grad()
        dist_loss = trainer.train_step(dense, ids, labels)
        ref_loss = single_process_step(ref_model, dense, ids, labels)
        assert dist_loss == pytest.approx(ref_loss, rel=1e-12)

        ref_params = dict(ref_model.named_parameters())
        for name, p in dist_model.named_parameters():
            ref_grad = ref_params[name].grad
            if ref_grad is None:
                assert p.grad is None or not np.abs(p.grad).any()
            else:
                np.testing.assert_allclose(
                    p.grad, ref_grad, rtol=1e-9, atol=1e-12, err_msg=name
                )

    def test_multi_step_training_stays_in_sync(self):
        sim = make_cluster()

        def ctor(rng):
            return DLRM(
                DENSE, tiny_table_configs(F, ROWS, N), tiny_dlrm_arch(N), rng=rng
            )

        dist_model, ref_model = copy_model(ctor)
        trainer = DistributedHybridTrainer(sim, dist_model)
        opt_d = SGD(dist_model.parameters(), lr=0.1)
        opt_r = SGD(ref_model.parameters(), lr=0.1)
        for step in range(4):
            dense, ids, labels = make_batch(sim, seed=step)
            opt_d.zero_grad()
            dist_loss = trainer.train_step(dense, ids, labels)
            opt_d.step()
            opt_r.zero_grad()
            ref_loss = single_process_step(ref_model, dense, ids, labels)
            opt_r.step()
            assert dist_loss == pytest.approx(ref_loss, rel=1e-9)
        for (n1, p1), (n2, p2) in zip(
            dist_model.named_parameters(), ref_model.named_parameters()
        ):
            np.testing.assert_allclose(p1.data, p2.data, rtol=1e-8, err_msg=n1)

    def test_timeline_has_three_alltoalls_and_allreduce(self):
        """§2.3.1: AlltoAll >= 3x, AllReduce >= 1x per iteration."""
        sim = make_cluster()
        model = DLRM(
            DENSE,
            tiny_table_configs(F, ROWS, N),
            tiny_dlrm_arch(N),
            rng=np.random.default_rng(0),
        )
        trainer = DistributedHybridTrainer(sim, model)
        trainer.train_step(*make_batch(sim))
        labels = [e.label for e in sim.timeline.events]
        assert labels.count("input_dist") == 1
        assert labels.count("output_dist") == 1
        assert labels.count("grad_dist") == 1
        assert labels.count("dense_allreduce") == 1

    def test_indivisible_batch_rejected(self):
        sim = make_cluster()
        model = DLRM(
            DENSE,
            tiny_table_configs(F, ROWS, N),
            tiny_dlrm_arch(N),
            rng=np.random.default_rng(0),
        )
        trainer = DistributedHybridTrainer(sim, model)
        with pytest.raises(ValueError, match="divisible"):
            trainer.train_step(
                np.zeros((5, DENSE)), np.zeros((5, F), dtype=int), np.zeros(5)
            )


class TestDMTTrainerEquivalence:
    @pytest.mark.parametrize(
        "model_kind,pass_through",
        [("dlrm", True), ("dlrm", False), ("dcn", True), ("dcn", False)],
    )
    def test_matches_single_process(self, model_kind, pass_through):
        sim = make_cluster(hosts=2, gpus=2)
        partition = FeaturePartition.contiguous(F, 2)

        def ctor(rng):
            if model_kind == "dlrm":
                return DMTDLRM(
                    DENSE,
                    tiny_table_configs(F, ROWS, N),
                    partition,
                    tiny_dlrm_arch(N),
                    tower_dim=4,
                    pass_through=pass_through,
                    rng=rng,
                )
            return DMTDCN(
                DENSE,
                tiny_table_configs(F, ROWS, N),
                partition,
                tiny_dcn_arch(N),
                tower_dim=4,
                pass_through=pass_through,
                rng=rng,
            )

        dist_model, ref_model = copy_model(ctor)
        trainer = DistributedDMTTrainer(sim, dist_model)
        dense, ids, labels = make_batch(sim)

        dist_model.zero_grad()
        dist_loss = trainer.train_step(dense, ids, labels)
        ref_loss = single_process_step(ref_model, dense, ids, labels)
        assert dist_loss == pytest.approx(ref_loss, rel=1e-12)

        ref_params = dict(ref_model.named_parameters())
        for name, p in dist_model.named_parameters():
            ref_grad = ref_params[name].grad
            if ref_grad is None:
                continue
            np.testing.assert_allclose(
                p.grad if p.grad is not None else np.zeros_like(p.data),
                ref_grad,
                rtol=1e-8,
                atol=1e-12,
                err_msg=name,
            )

    def test_multi_step_fit_matches_single_process(self):
        sim = make_cluster(hosts=2, gpus=2)
        partition = FeaturePartition.contiguous(F, 2)

        def ctor(rng):
            return DMTDLRM(
                DENSE,
                tiny_table_configs(F, ROWS, N),
                partition,
                tiny_dlrm_arch(N),
                tower_dim=4,
                rng=rng,
            )

        dist_model, ref_model = copy_model(ctor)
        trainer = DistributedDMTTrainer(sim, dist_model)
        opt_d = Adam(dist_model.parameters(), lr=0.01)
        opt_r = Adam(ref_model.parameters(), lr=0.01)
        loss_mod = BCEWithLogitsLoss()
        for step in range(3):
            dense, ids, labels = make_batch(sim, seed=10 + step)
            dist_loss = trainer.fit_step(dense, ids, labels, [opt_d])
            opt_r.zero_grad()
            logits = ref_model(dense, ids)
            ref_loss = loss_mod(logits, labels)
            ref_model.backward(loss_mod.backward())
            opt_r.step()
            assert dist_loss == pytest.approx(ref_loss, rel=1e-8)
        for (n1, p1), (n2, p2) in zip(
            dist_model.named_parameters(), ref_model.named_parameters()
        ):
            np.testing.assert_allclose(p1.data, p2.data, rtol=1e-7, err_msg=n1)

    def test_tower_sync_is_intra_host(self):
        """§3.2: tower-module gradients synchronize within a host only."""
        sim = make_cluster(hosts=2, gpus=2)
        partition = FeaturePartition.contiguous(F, 2)
        model = DMTDLRM(
            DENSE,
            tiny_table_configs(F, ROWS, N),
            partition,
            tiny_dlrm_arch(N),
            tower_dim=4,
            rng=np.random.default_rng(0),
        )
        trainer = DistributedDMTTrainer(sim, model)
        trainer.train_step(*make_batch(sim))
        tower_events = [
            e for e in sim.timeline.events if e.label == "tower_allreduce"
        ]
        assert len(tower_events) == 1
        assert tower_events[0].world_size == sim.gpus_per_host

    def test_peer_alltoall_smaller_than_flat_alltoall_events(self):
        """DMT's cross-host collectives run in world T, not G."""
        sim = make_cluster(hosts=2, gpus=2)
        partition = FeaturePartition.contiguous(F, 2)
        model = DMTDLRM(
            DENSE,
            tiny_table_configs(F, ROWS, N),
            partition,
            tiny_dlrm_arch(N),
            tower_dim=4,
            rng=np.random.default_rng(0),
        )
        trainer = DistributedDMTTrainer(sim, model)
        trainer.train_step(*make_batch(sim))
        peer = [e for e in sim.timeline.events if "peer_a2a" in e.label]
        assert peer and all(e.world_size == sim.num_hosts for e in peer)

    def test_tower_host_mismatch_rejected(self):
        sim = make_cluster(hosts=2, gpus=2)
        model = DMTDLRM(
            DENSE,
            tiny_table_configs(F, ROWS, N),
            FeaturePartition.contiguous(F, 3),
            tiny_dlrm_arch(N),
            rng=np.random.default_rng(0),
        )
        with pytest.raises(ValueError, match="towers"):
            DistributedDMTTrainer(sim, model)

    def test_compressed_dmt_moves_fewer_cross_host_bytes(self):
        """Tower compression shrinks step (f) traffic (the CR story)."""

        def peer_bytes(tower_dim):
            sim = make_cluster(hosts=2, gpus=2)
            model = DMTDLRM(
                DENSE,
                tiny_table_configs(F, ROWS, N),
                FeaturePartition.contiguous(F, 2),
                tiny_dlrm_arch(N),
                tower_dim=tower_dim,
                rng=np.random.default_rng(0),
            )
            DistributedDMTTrainer(sim, model).train_step(*make_batch(sim))
            return sum(
                e.nbytes for e in sim.timeline.events if e.label == "sptt.peer_a2a"
            )

        assert peer_bytes(tower_dim=2) < peer_bytes(tower_dim=N)
