"""End-to-end integration: the full adoption path, composed.

Walks the complete workflow a user of this library would run —
generate data, train a probe, run TP, build the DMT model from the
learned partition, train it *distributed* on a simulated cluster, and
evaluate — asserting every seam holds together.
"""

import numpy as np
import pytest

from repro.core.dmt_pipeline import DistributedDMTTrainer, DistributedHybridTrainer
from repro.core.partition import FeaturePartition
from repro.data import SyntheticCriteoConfig, SyntheticCriteoDataset, train_eval_split
from repro.hardware import Cluster
from repro.models import DLRM, DMTDLRM, tiny_table_configs
from repro.models.configs import DenseArch
from repro.nn import Adam, BCEWithLogitsLoss
from repro.partitioner import TowerPartitioner, interaction_from_activations
from repro.sim import Phase, SimCluster
from repro.training import TrainConfig, Trainer
from repro.training.metrics import auc

F, CARD, N = 8, 32, 8


@pytest.fixture(scope="module")
def data():
    ds = SyntheticCriteoDataset(
        SyntheticCriteoConfig(
            num_sparse=F, num_blocks=2, cardinality=CARD, rho=0.9
        ),
        seed=0,
    )
    return ds, train_eval_split(*ds.sample(4000, seed=1))


def arch():
    return DenseArch(embedding_dim=N, bottom_mlp=(16,), top_mlp=(32,))


def test_full_workflow_probe_tp_distributed_train(data):
    ds, ((td, ti, tl), (ed, ei, el)) = data

    # 1. Probe model.
    probe = DLRM(13, tiny_table_configs(F, CARD, N), arch(),
                 rng=np.random.default_rng(3))
    Trainer(probe, TrainConfig(batch_size=128, epochs=2, seed=3,
                               sparse_lr=0.05)).fit(td, ti, tl)

    # 2. Learned partition.
    interaction = interaction_from_activations(
        probe.embeddings(ti[:2000]), center=True
    )
    tp = TowerPartitioner(num_towers=2, strategy="coherent",
                          mds_iterations=400)
    result = tp.partition_from_interaction(
        interaction, rng=np.random.default_rng(0)
    )
    assert result.partition.num_towers == 2

    # 3. Distributed DMT training on a 2-host cluster.
    sim = SimCluster(Cluster(num_hosts=2, gpus_per_host=2, generation="A100"))
    model = DMTDLRM(13, tiny_table_configs(F, CARD, N), result.partition,
                    arch(), tower_dim=4, rng=np.random.default_rng(4))
    trainer = DistributedDMTTrainer(sim, model)
    opt = Adam(model.parameters(), lr=0.01)
    global_batch = 128
    losses = []
    for step in range(20):
        lo = (step * global_batch) % (len(tl) - global_batch)
        sl = slice(lo, lo + global_batch)
        losses.append(trainer.fit_step(td[sl], ti[sl], tl[sl], [opt]))

    # 4. The distributed model learned, and the timeline is populated.
    assert np.mean(losses[-5:]) < np.mean(losses[:5])
    final_auc = auc(el, model.forward(ed, ei))
    assert final_auc > 0.70
    breakdown = sim.timeline.breakdown()
    assert Phase.EMBEDDING_COMM in breakdown
    assert Phase.DENSE_SYNC in breakdown


def test_hybrid_and_dmt_trainers_learn_comparably(data):
    """Same data, same budget: distributed baseline vs distributed DMT
    end within a few AUC points of each other."""
    ds, ((td, ti, tl), (ed, ei, el)) = data
    sim1 = SimCluster(Cluster(2, 2, "A100"))
    sim2 = SimCluster(Cluster(2, 2, "A100"))
    flat = DLRM(13, tiny_table_configs(F, CARD, N), arch(),
                rng=np.random.default_rng(9))
    dmt = DMTDLRM(13, tiny_table_configs(F, CARD, N),
                  FeaturePartition.contiguous(F, 2), arch(), tower_dim=4,
                  rng=np.random.default_rng(9))
    hybrid_trainer = DistributedHybridTrainer(sim1, flat)
    dmt_trainer = DistributedDMTTrainer(sim2, dmt)
    opt_flat = Adam(flat.parameters(), lr=0.01)
    opt_dmt = Adam(dmt.parameters(), lr=0.01)
    global_batch = 128
    for step in range(20):
        lo = (step * global_batch) % (len(tl) - global_batch)
        sl = slice(lo, lo + global_batch)
        opt_flat.zero_grad()
        hybrid_trainer.train_step(td[sl], ti[sl], tl[sl])
        opt_flat.step()
        dmt_trainer.fit_step(td[sl], ti[sl], tl[sl], [opt_dmt])
    auc_flat = auc(el, flat(ed, ei))
    auc_dmt = auc(el, dmt.forward(ed, ei))
    assert abs(auc_flat - auc_dmt) < 0.08
    # DMT moved fewer cross-host embedding bytes in step (f) than the
    # baseline's global output/grad AlltoAlls.
    def cross_host_emb_bytes(sim, labels):
        return sum(
            e.nbytes for e in sim.timeline.events if e.label in labels
        )
    baseline_bytes = cross_host_emb_bytes(
        sim1, {"output_dist", "grad_dist"}
    )
    dmt_bytes = cross_host_emb_bytes(
        sim2, {"sptt.peer_a2a", "sptt.peer_a2a_bwd"}
    )
    assert dmt_bytes < baseline_bytes
