"""Tests for the repro.api session layer: specs, sessions, CLI."""

import dataclasses
import json

import numpy as np
import pytest

from repro.api import (
    ClusterSpec,
    DataSpec,
    ModelSpec,
    PartitionSpec,
    PerfSpec,
    RunSpec,
    Session,
    SpecError,
    TrainSpec,
    spec_auc_sweep,
)
from repro.api.presets import (
    distributed_training_spec,
    quickstart_spec,
    train_dmt_criteo_spec,
)
from repro.experiments.runner import main as cli_main

#: A shrunken end-to-end quality spec: probe -> TP -> DMT in ~a second.
TINY = RunSpec(
    name="tiny-e2e",
    cluster=ClusterSpec(num_hosts=2, gpus_per_host=2, generation="A100"),
    data=DataSpec(
        num_sparse=8, num_blocks=2, cardinality=32, num_samples=1800
    ),
    model=ModelSpec(
        family="dlrm",
        variant="dmt",
        embedding_dim=8,
        bottom_mlp=(16,),
        top_mlp=(16,),
        tower_dim=1,
        c=0,
        p=1,
        seed=11,
    ),
    partition=PartitionSpec(
        strategy="coherent",
        num_towers=2,
        probe_epochs=1,
        probe_samples=600,
        mds_iterations=100,
    ),
    train=TrainSpec(batch_size=128, epochs=1, seed=11),
)


class TestSpecValidation:
    def test_unknown_generation(self):
        with pytest.raises(SpecError, match="unknown generation"):
            ClusterSpec(generation="B200")

    def test_nonpositive_cluster(self):
        with pytest.raises(SpecError, match="num_hosts"):
            ClusterSpec(num_hosts=0)

    def test_eval_fraction_range(self):
        with pytest.raises(SpecError, match="eval_fraction"):
            DataSpec(eval_fraction=1.5)

    def test_blocks_exceed_features(self):
        with pytest.raises(SpecError, match="num_blocks"):
            DataSpec(num_sparse=2, num_blocks=4)

    def test_unknown_family(self):
        with pytest.raises(SpecError, match="family"):
            ModelSpec(family="transformer")

    def test_dcn_needs_cross_layers(self):
        with pytest.raises(SpecError, match="cross_layers"):
            ModelSpec(family="dcn", cross_layers=0)

    def test_unknown_partition_strategy(self):
        with pytest.raises(SpecError, match="strategy"):
            PartitionSpec(strategy="random")

    def test_given_requires_groups(self):
        with pytest.raises(SpecError, match="groups"):
            PartitionSpec(strategy="given")

    def test_groups_only_for_given(self):
        with pytest.raises(SpecError, match="groups"):
            PartitionSpec(strategy="naive", groups=((0, 1), (2, 3)))

    def test_empty_runspec(self):
        with pytest.raises(SpecError, match="no work"):
            RunSpec()

    def test_train_requires_data_and_model(self):
        with pytest.raises(SpecError, match="data and model"):
            RunSpec(train=TrainSpec())

    def test_dmt_training_requires_partition(self):
        with pytest.raises(SpecError, match="partition"):
            RunSpec(
                data=DataSpec(),
                model=ModelSpec(variant="dmt"),
                train=TrainSpec(),
            )

    def test_simulated_towers_must_match_hosts(self):
        with pytest.raises(SpecError, match="num_hosts"):
            dataclasses.replace(
                distributed_training_spec(),
                cluster=ClusterSpec(num_hosts=4, gpus_per_host=2),
            )

    def test_too_many_towers_for_features(self):
        with pytest.raises(SpecError, match="towers"):
            RunSpec(
                data=DataSpec(num_sparse=4),
                partition=PartitionSpec(strategy="naive", num_towers=8),
            )

    def test_given_derives_num_towers_from_groups(self):
        part = PartitionSpec(
            strategy="given", groups=((0, 1), (2, 3), (4, 5, 6, 7))
        )
        assert part.num_towers == 3
        with pytest.raises(SpecError, match="num_hosts"):
            RunSpec(
                cluster=ClusterSpec(num_hosts=2, gpus_per_host=2),
                data=DataSpec(num_sparse=8, num_blocks=2),
                model=ModelSpec(variant="dmt"),
                partition=part,
                train=TrainSpec(mode="simulated"),
            )

    def test_given_rejects_noncontiguous_indices(self):
        with pytest.raises(SpecError, match="cover feature indices"):
            PartitionSpec(strategy="given", groups=((0, 5), (1, 6)))

    def test_given_rejects_conflicting_num_towers(self):
        with pytest.raises(SpecError, match="conflicts"):
            PartitionSpec(
                strategy="given", num_towers=8, groups=((0, 1), (2, 3))
            )
        # An explicit value equal to the old field default must not
        # slip through either.
        with pytest.raises(SpecError, match="conflicts"):
            PartitionSpec(
                strategy="given",
                num_towers=4,
                groups=((0,), (1,), (2,), (3,), (4,)),
            )
        assert PartitionSpec(strategy="naive").num_towers == 4

    def test_specs_coerce_lists_to_tuples(self):
        model = ModelSpec(bottom_mlp=[32], top_mlp=[64, 32])
        assert model.bottom_mlp == (32,)
        part = PartitionSpec(strategy="given", groups=[[0, 1], [2, 3]])
        assert part.groups == ((0, 1), (2, 3))
        hash((model, part))  # session lru caches need hashable specs

    def test_given_rejects_duplicate_features(self):
        with pytest.raises(SpecError, match="more than one tower"):
            PartitionSpec(strategy="given", groups=((0, 1), (1, 2)))

    def test_given_rejects_empty_group(self):
        with pytest.raises(SpecError, match="at least one feature"):
            PartitionSpec(strategy="given", groups=((0, 1), ()))

    def test_given_groups_must_cover_features(self):
        with pytest.raises(SpecError, match="cover features"):
            RunSpec(
                data=DataSpec(num_sparse=8, num_blocks=2),
                partition=PartitionSpec(
                    strategy="given", groups=((0, 1), (2, 3))
                ),
            )

    def test_probe_knobs_validated(self):
        with pytest.raises(SpecError, match="probe_batch_size"):
            PartitionSpec(probe_batch_size=0)
        with pytest.raises(SpecError, match="probe_sparse_lr"):
            PartitionSpec(probe_sparse_lr=0.0)

    def test_simulated_rejects_single_mode_knobs(self):
        with pytest.raises(SpecError, match="no effect"):
            TrainSpec(mode="simulated", dense_optimizer="sgd")
        with pytest.raises(SpecError, match="no effect"):
            TrainSpec(mode="simulated", seed=42)

    def test_nonprobe_rejects_probe_knobs(self):
        with pytest.raises(SpecError, match="no effect"):
            PartitionSpec(strategy="naive", probe_epochs=50)
        with pytest.raises(SpecError, match="no effect"):
            PartitionSpec(
                strategy="given", groups=((0, 1), (2, 3)), kmeans_seed=9
            )

    def test_single_rejects_simulated_mode_knobs(self):
        with pytest.raises(SpecError, match="no effect"):
            TrainSpec(mode="single", steps=100)
        with pytest.raises(SpecError, match="no effect"):
            TrainSpec(mode="single", verify=False)

    def test_name_rejects_path_separators(self):
        with pytest.raises(SpecError, match="path separators"):
            RunSpec(name="../evil", perf=PerfSpec())

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(SpecError, match="unknown RunSpec field"):
            RunSpec.from_dict({"perf": {"kind": "dcn"}, "nonsense": 1})

    def test_from_dict_rejects_unknown_nested_keys(self):
        with pytest.raises(SpecError, match="unknown PerfSpec field"):
            RunSpec.from_dict({"perf": {"kind": "dcn", "batchsize": 4}})

    def test_from_json_rejects_garbage(self):
        with pytest.raises(SpecError, match="not valid JSON"):
            RunSpec.from_json("{nope")

    def test_from_dict_rejects_malformed_tuple_fields(self):
        with pytest.raises(SpecError, match="invalid PartitionSpec"):
            RunSpec.from_dict(
                {"partition": {"strategy": "given", "groups": [1, 2]}}
            )
        with pytest.raises(SpecError, match="invalid ModelSpec"):
            RunSpec.from_dict(
                {"data": {}, "model": {"bottom_mlp": 32}}
            )

    def test_from_dict_rejects_float_feature_indices(self):
        with pytest.raises(SpecError, match="integers"):
            RunSpec.from_dict(
                {"partition": {"strategy": "given", "groups": [[0.9, 1]]}}
            )


class TestSpecRoundTrip:
    @pytest.mark.parametrize(
        "spec",
        [
            quickstart_spec(),
            train_dmt_criteo_spec(),
            distributed_training_spec(),
            TINY,
        ],
        ids=lambda s: s.name,
    )
    def test_dict_and_json_round_trip(self, spec):
        assert RunSpec.from_dict(spec.to_dict()) == spec
        assert RunSpec.from_json(spec.to_json()) == spec

    def test_dict_uses_plain_types(self):
        payload = json.loads(TINY.to_json())
        assert payload["model"]["bottom_mlp"] == [16]
        assert payload["cluster"]["generation"] == "A100"

    def test_groups_round_trip_as_tuples(self):
        spec = RunSpec(
            partition=PartitionSpec(
                strategy="given", num_towers=2, groups=((0, 2), (1, 3))
            )
        )
        back = RunSpec.from_dict(spec.to_dict())
        assert back.partition.groups == ((0, 2), (1, 3))

    def test_file_round_trip(self, tmp_path):
        path = str(tmp_path / "spec.json")
        TINY.save(path)
        assert RunSpec.load(path) == TINY


class TestSessionStages:
    def test_stage_artifacts_cached(self):
        session = Session(quickstart_spec())
        assert session.build_cluster() is session.build_cluster()
        assert session.price() is session.price()

    def test_plan_uses_train_batch_size(self):
        assert Session(TINY).plan().batch_size == 128  # TINY's batch
        assert Session(distributed_training_spec()).plan().batch_size == 128
        assert Session(quickstart_spec()).plan().batch_size == 16384

    def test_price_matches_iteration_model(self):
        from repro.hardware import Cluster
        from repro.perf.iteration_model import IterationLatencyModel
        from repro.perf.profiles import dmt_dcn_profile, paper_dcn_profile

        art = Session(quickstart_spec()).price()
        model = IterationLatencyModel()
        cluster = Cluster(8, 8, "H100")
        assert art.baseline.total_s == model.hybrid(
            paper_dcn_profile(), cluster, 16384
        ).total_s
        assert art.dmt.total_s == model.dmt(
            dmt_dcn_profile(8), cluster, 16384
        ).total_s

    def test_partition_strategies(self):
        base = RunSpec(
            data=DataSpec(num_sparse=8, num_blocks=2, cardinality=32),
            partition=PartitionSpec(strategy="naive", num_towers=2),
        )
        naive = Session(base).partition().partition
        assert naive.groups == ((0, 2, 4, 6), (1, 3, 5, 7))
        contig = Session(
            dataclasses.replace(
                base,
                partition=PartitionSpec(strategy="contiguous", num_towers=2),
            )
        ).partition().partition
        assert contig.groups == ((0, 1, 2, 3), (4, 5, 6, 7))
        given = Session(
            dataclasses.replace(
                base,
                partition=PartitionSpec(
                    strategy="given",
                    num_towers=2,
                    groups=((7, 0, 1, 2), (3, 4, 5, 6)),
                ),
            )
        ).partition().partition
        assert given.groups == ((7, 0, 1, 2), (3, 4, 5, 6))

    def test_missing_section_raises(self):
        session = Session(quickstart_spec())
        with pytest.raises(SpecError, match="no data section"):
            session.load_data()

    def test_session_accepts_dict(self):
        art = Session(quickstart_spec().to_dict()).price()
        assert art.speedup > 1.0

    def test_session_rejects_other_types(self):
        with pytest.raises(SpecError, match="RunSpec or dict"):
            Session(42)


class TestSessionEndToEnd:
    def test_run_matches_hand_wired_pipeline(self):
        """Session.run() == the hand-wired §3.3 workflow, float-exact."""
        from repro.data import (
            SyntheticCriteoConfig,
            SyntheticCriteoDataset,
            train_eval_split,
        )
        from repro.models import DMTDLRM, DLRM, tiny_table_configs
        from repro.models.configs import DenseArch
        from repro.partitioner import (
            TowerPartitioner,
            interaction_from_activations,
        )
        from repro.training import TrainConfig, Trainer

        result = Session(TINY).run()

        # Hand-wired equivalent (the pre-api examples/train_dmt_criteo
        # wiring, shrunk to TINY's geometry).
        dataset = SyntheticCriteoDataset(
            SyntheticCriteoConfig(
                num_sparse=8, num_blocks=2, cardinality=32
            ),
            seed=0,
        )
        (td, ti, tl), (ed, ei, el) = train_eval_split(
            *dataset.sample(1800, seed=1), eval_fraction=1.0 / 3.0
        )
        tables = tiny_table_configs(8, 32, 8)
        arch = DenseArch(embedding_dim=8, bottom_mlp=(16,), top_mlp=(16,))
        probe = DLRM(13, tables, arch, rng=np.random.default_rng(7))
        Trainer(
            probe,
            TrainConfig(batch_size=256, epochs=1, seed=7, sparse_lr=0.05),
        ).fit(td, ti, tl)
        interaction = interaction_from_activations(
            probe.embeddings(ti[:600]), center=True
        )
        tp = TowerPartitioner(2, strategy="coherent", mds_iterations=100)
        tp_result = tp.partition_from_interaction(
            interaction, rng=np.random.default_rng(0)
        )
        model = DMTDLRM(
            13,
            tables,
            tp_result.partition,
            arch,
            tower_dim=1,
            c=0,
            p=1,
            rng=np.random.default_rng(11),
        )
        trainer = Trainer(model, TrainConfig(batch_size=128, epochs=1, seed=11))
        trainer.fit(td, ti, tl)
        expected = trainer.evaluate(ed, ei, el)

        assert result.partition["groups"] == [
            list(g) for g in tp_result.partition.groups
        ]
        assert result.train["auc"] == pytest.approx(expected.auc, abs=1e-12)
        assert result.train["log_loss"] == pytest.approx(
            expected.log_loss, abs=1e-12
        )

    def test_simulated_training_is_exact(self):
        art = Session(distributed_training_spec()).train()
        assert len(art.losses) == 8
        assert art.losses == pytest.approx(art.ref_losses, abs=1e-9)
        assert art.max_drift < 1e-9
        assert "embedding_comm" in art.timeline

    def test_auc_sweep_protocol(self):
        med, std, values = spec_auc_sweep(TINY, seeds=(0, 1))
        assert len(values) == 2
        assert med == float(np.median(values))
        # Seed protocol: model seed 100+s, train seed s.
        run0 = dataclasses.replace(
            TINY,
            model=TINY.model.replace(seed=100),
            train=TINY.train.replace(seed=0),
        )
        assert values[0] == Session(run0).train().eval_result.auc

    def test_auc_sweep_rejects_simulated_mode(self):
        with pytest.raises(SpecError, match="single-process"):
            spec_auc_sweep(distributed_training_spec(), seeds=(0,))

    def test_probe_cache_shared_across_alias_strategies(self):
        from repro.api.session import _probed_partition, clear_caches

        clear_caches()
        probe = Session(dataclasses.replace(
            TINY, partition=TINY.partition.replace(strategy="probe")
        )).partition()
        coherent = Session(TINY).partition()
        assert probe.partition == coherent.partition
        info = _probed_partition.cache_info()
        # 'probe' and 'coherent' share one entry: first call misses,
        # second hits.
        assert info.misses == 1 and info.hits == 1


class TestRunSpecCLI:
    def test_run_spec_json_reexecutes_identically(self, tmp_path, capsys):
        direct = Session(TINY).run().to_dict()
        path = str(tmp_path / "tiny.json")
        TINY.save(path)
        assert cli_main(["run-spec", path, "--json"]) == 0
        replayed = json.loads(capsys.readouterr().out)
        assert replayed == direct

    def test_run_spec_text_render(self, tmp_path, capsys):
        path = str(tmp_path / "quick.json")
        quickstart_spec().save(path)
        assert cli_main(["run-spec", path, "--save", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "== run: quickstart ==" in out and "speedup" in out
        saved = json.loads((tmp_path / "quickstart.json").read_text())
        assert saved["price"]["speedup"] > 1.0

    def test_run_spec_missing_file(self, capsys):
        assert cli_main(["run-spec", "/nonexistent/spec.json"]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_run_spec_invalid_spec(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text('{"perf": {"kind": "gpt"}}')
        assert cli_main(["run-spec", str(path)]) == 2
        assert "invalid spec" in capsys.readouterr().err
