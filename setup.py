"""Legacy build shim.

The offline environment has setuptools but not `wheel`, so PEP 517
editable builds fail; this shim lets `pip install -e .` take the
`setup.py develop` path.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
