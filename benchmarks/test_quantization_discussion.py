"""Bench: §6 — quantized DMT still beats quantized baseline."""

from repro.experiments.quantization import run


def test_quantization_discussion(regen):
    result = regen(run)
    # Paper: up to 1.2x on 1024 H100s.
    assert 1.05 < result.data["dmt_speedup_quantized"] < 1.6
    sweep = result.data["precision_sweep_ms"]
    # Narrower wire precision monotonically reduces iteration time.
    assert sweep["fp8"] < sweep["fp16"] < sweep["fp32"]
