"""Bench: Figure 10 — DMT speedup across platforms and scales.

Shape assertions mirror the paper's claims:
- headline: up to ~1.9x at large scale;
- DLRM speedup grows with scale (communication-bound regime);
- DCN gains more at small scale on V100 than H100 (compute-bound);
- at 2 hosts on modern GPUs DMT is roughly neutral (paper: 0.9).
"""

from repro.experiments.figure10 import run


def test_figure10_speedups(regen):
    result = regen(run)
    dlrm, dcn = result.data["dlrm"], result.data["dcn"]

    assert 1.6 <= result.data["max_speedup"] <= 2.6

    # DLRM: large scale >> small scale, on every platform.
    for gen in ("V100", "A100", "H100"):
        big = dlrm[f"{gen}/128"]
        small = dlrm[f"{gen}/16"]
        assert big > small + 0.3, (gen, big, small)

    # DLRM at 16 GPUs on H100 is roughly neutral (paper 0.9).
    assert dlrm["H100/16"] < 1.25

    # DLRM at >= 64 GPUs on every platform exceeds 1.5x.
    for gen in ("V100", "A100", "H100"):
        assert dlrm[f"{gen}/64"] > 1.5

    # DCN: V100 gains at small scale exceed H100's (compute-bound win).
    assert dcn["V100/16"] > dcn["H100/16"] - 0.15
    # DCN always wins at 64+ GPUs.
    for gen in ("V100", "A100", "H100"):
        assert dcn[f"{gen}/64"] > 1.2
