"""Ablation benches for the reproduction's own design choices.

DESIGN.md calls out several load-bearing decisions; each ablation
switches one off and shows the paper-reproducing behaviour degrade:

1. congestion keyed by *cross-host flows per NIC* (vs hosts spanned) —
   the choice that lets SPTT's peer AlltoAll outrun the global one;
2. the tower-count overlap ramp — the choice that reproduces Figure
   10's sub-1.0 speedups at two hosts;
3. probe centering + interaction normalization in TP — the choices
   that make block recovery work on lightly-trained probes;
4. planted block structure in the dataset — without it, TP cannot and
   should not beat naive striding (mechanism check);
5. K-host towers (§3.1.3) — the specialization trade-off surface.
"""

import numpy as np
import pytest

from repro.comm.calibration import ALLTOALL_NIC_EFFICIENCY
from repro.experiments.common import dmt_profile_for_towers
from repro.experiments.quality import quality_data
from repro.hardware import Cluster
from repro.partitioner import TowerPartitioner, interaction_from_activations
from repro.perf import (
    IterationLatencyModel,
    PerfCalibration,
    SpecializedSPTTModel,
    paper_dlrm_profile,
)

B = 16384


def test_ablation_congestion_keying(benchmark):
    """Flows-keyed efficiency gives the peer AlltoAll (T-1 flows) a
    real edge over the global collective (L*(T-1) flows) spanning the
    same hosts; keying by hosts would erase it."""

    def peer_vs_global_efficiency(hosts=8, gpus=8):
        curve = ALLTOALL_NIC_EFFICIENCY
        from repro.comm.calibration import CongestionCurve

        c = CongestionCurve.from_table(curve)
        eff_global = c(gpus * hosts - gpus)  # L*(H-1) flows
        eff_peer_flows_keyed = c(hosts - 1)  # T-1 flows
        eff_peer_hosts_keyed = eff_global  # same hosts -> same value
        return eff_global, eff_peer_flows_keyed, eff_peer_hosts_keyed

    eff_global, flows_keyed, hosts_keyed = benchmark(peer_vs_global_efficiency)
    assert flows_keyed > eff_global * 1.2  # the modeled SPTT edge
    assert hosts_keyed == pytest.approx(eff_global)  # ablated: no edge


def test_ablation_overlap_ramp(benchmark):
    """Without the tower-count ramp, DMT would (wrongly) win big at
    two hosts; with it, the small-scale dip of Figure 10 appears."""

    class NoRamp(PerfCalibration):
        def dmt_overlap_at(self, num_towers: int) -> float:
            return self.overlap_cap

    def speedups():
        cluster = Cluster(2, 8, "H100")
        profile = dmt_profile_for_towers("dlrm", 2)
        base = paper_dlrm_profile()
        with_ramp = IterationLatencyModel(PerfCalibration()).speedup(
            base, profile, cluster, B
        )
        without = IterationLatencyModel(NoRamp()).speedup(
            base, profile, cluster, B
        )
        return with_ramp, without

    with_ramp, without = benchmark(speedups)
    assert with_ramp < 1.1  # paper: 0.9 at 16 GPUs
    assert without > with_ramp + 0.1  # the ablated model overclaims


def test_ablation_tp_probe_processing(benchmark):
    """Centering + normalization are what make TP recover planted
    blocks from a lightly-trained probe (purity ~0.86 vs ~0.5)."""
    dataset, (td, ti, tl), _ = quality_data()

    from repro.experiments.quality import block_purity, learned_tp_partition
    from repro.models import DLRM
    from repro.experiments.quality import dlrm_factory, quality_arch
    from repro.training import TrainConfig, Trainer

    def purity_with_and_without():
        probe = dlrm_factory(np.random.default_rng(7))
        Trainer(
            probe,
            TrainConfig(batch_size=256, epochs=2, seed=7, sparse_lr=0.05),
        ).fit(td, ti, tl)
        acts = probe.embeddings(ti[:6000])
        purities = {}
        for name, center, normalize in (
            ("processed", True, True),
            ("raw", False, False),
        ):
            interaction = interaction_from_activations(acts, center=center)
            tp = TowerPartitioner(
                4,
                strategy="coherent",
                mds_iterations=800,
                normalize_interaction=normalize,
            )
            result = tp.partition_from_interaction(
                interaction, rng=np.random.default_rng(0)
            )
            purities[name] = block_purity(result.partition, dataset.block_of)
        return purities

    purities = benchmark(purity_with_and_without)
    assert purities["processed"] > 0.7
    assert purities["processed"] > purities["raw"] + 0.1


def test_ablation_planted_structure(benchmark):
    """Mechanism check: on a dataset with rho=0 (ids carry no block
    latent), TP has nothing to find — purity near chance."""
    from repro.data import SyntheticCriteoConfig, SyntheticCriteoDataset
    from repro.experiments.quality import block_purity

    def purity_on_structureless_data():
        config = SyntheticCriteoConfig(
            num_sparse=26, num_blocks=4, cardinality=48, rho=0.0
        )
        ds = SyntheticCriteoDataset(config, seed=0)
        _, ids, _ = ds.sample(4000, seed=1)
        values = np.stack(
            [ds.decoded_value(f, ids[:, f]) for f in range(26)], axis=1
        )[:, :, None]
        interaction = interaction_from_activations(values, center=True)
        tp = TowerPartitioner(4, strategy="coherent", mds_iterations=400)
        result = tp.partition_from_interaction(
            interaction, rng=np.random.default_rng(0)
        )
        return block_purity(result.partition, ds.block_of)

    purity = benchmark(purity_on_structureless_data)
    # Chance level for 4 balanced towers over 4 near-equal blocks ~0.26.
    assert purity < 0.45


def test_ablation_khost_towers(benchmark):
    """§3.1.3 K-host sweep: the trade-off surface exists and K=1 wins
    under the calibrated congestion curves at 512 GPUs."""
    from dataclasses import replace

    from repro.perf.profiles import dmt_dlrm_profile

    def sweep():
        model = SpecializedSPTTModel()
        cluster = Cluster(64, 8, "A100")

        def prof(towers):
            return replace(
                dmt_dlrm_profile(26), num_towers=towers, name=f"{towers}T"
            )

        return {
            k: bd.total_s
            for k, bd in model.khost_sweep(prof, cluster, B, (1, 2, 4)).items()
        }

    totals = benchmark(sweep)
    assert set(totals) == {1, 2, 4}
    assert totals[1] < totals[2] < totals[4]
