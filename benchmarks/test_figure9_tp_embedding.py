"""Bench: Figure 9 — TP recovers block structure in the 2D embedding."""

from repro.experiments.figure9 import run


def test_figure9_tp_artifacts(regen):
    result = regen(run)
    # Learned partition must be much purer than chance (~0.27 for 4
    # balanced towers over 4 planted blocks).
    assert result.data["purity"] > 0.55
    assert len(result.data["groups"]) == 4
    # The rendering contains both artifacts.
    assert "similarity matrix" in result.body
    assert "2D feature embedding" in result.body
