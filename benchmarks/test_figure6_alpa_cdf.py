"""Bench: Figure 6 — data parallelism wins the dense-part search."""

from repro.experiments.figure6 import run


def test_figure6_alpa_search(regen):
    result = regen(run)
    assert result.data["fastest_is_data_parallel"]
    assert result.data["num_configs"] > 20  # a real search space
    lats = result.data["latencies_ms"]
    assert max(lats) / min(lats) > 3  # bad meshes are much slower
