"""Bench: Table 1 — the compute-vs-network generational gap."""

from repro.experiments.table1 import run


def test_table1_hardware_gap(regen):
    result = regen(run)
    assert result.data["compute_growth"] / result.data["network_growth"] > 10
