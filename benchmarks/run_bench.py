#!/usr/bin/env python
"""Benchmark emitters: perf PRs leave a measured trajectory, not claims.

Two targets, selected with ``--bench``:

- ``sparse`` (default) — dense vs rowwise embedding gradients: times
  the single-process train step (forward / backward / optimizer) of a
  DLRM under both ``sparse_grad_mode`` settings and writes
  ``BENCH_sparse_path.json`` (steps/sec, peak transient bytes/step).
  The paper-ish default is the acceptance geometry: 26 tables x 1M rows
  x dim 128 at batch 256.
- ``serving`` — the serving plane: replays a skewed micro-batched
  trace through the vectorized LRU embedding cache vs the per-key
  reference walk (cache-lookup throughput in keys/sec and the
  vectorized-over-reference speedup), then runs the full
  ``ServingFleet`` replay and records simulated requests/sec plus
  wall-clock per 100k requests.  Writes ``BENCH_serving.json``.
  The default 100k-request trace is the acceptance geometry.
- ``tiering`` — the memory hierarchy: sweeps capacity pressure
  (key space over HBM cache rows) and replays one skewed trace per
  point under all-HBM provisioning vs the tiered DRAM/remote chain,
  recording p99 latency, chain hit rate, provisioned dollars, and
  $/1k requests per arm.  Writes ``BENCH_tiering.json``.
- ``faults`` — the robustness plane: replays the same seeded trace
  through a fault-free baseline, a crash storm absorbed by client
  retries, and a fetch-tier outage served degraded from cache, then
  sweeps checkpoint cadence under a fixed crash.  Records the retry
  overhead (p99 vs baseline, retried fraction), the degraded-serve
  fraction, and the MTTR-vs-cadence ladder (with a monotonicity
  verdict).  Writes ``BENCH_faults.json``.
- ``freshness`` — the train->serve loop: runs the online-training
  driver under hot-set churn (delta checkpoints, canary-gated staged
  hot swaps on a ResilientFleet) against a frozen arm serving the
  identical trace at the same replica count.  Records the per-window
  AUC gap, the mean online-vs-frozen AUC gain, the delta-over-full
  checkpoint compression, and the swap count.  Writes
  ``BENCH_freshness.json``.
- ``ab`` — the multi-task quality plane: runs the paired DBMTL vs
  shared-bottom A/B (``Session.ab``: both arms per seed on identical
  data, §5.2 seed protocol) and records the per-task paired deltas
  with their Student-t confidence intervals, the headline CVR AUC
  delta, and whether its CI excludes zero.  Writes ``BENCH_ab.json``.

``--fast`` shrinks any target for CI smoke.

Run:  PYTHONPATH=src python benchmarks/run_bench.py [--bench serving]
      [--fast] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import platform
import time
import tracemalloc
from datetime import datetime, timezone

import numpy as np

from repro.data import random_batch
from repro.models import DLRM
from repro.models.configs import DenseArch
from repro.nn import TableConfig
from repro.training import TrainConfig, Trainer

BENCH_VERSION = 1


def build_trainer(args, mode: str) -> Trainer:
    tables = [
        TableConfig(f"t{i}", args.rows, args.dim, pooling=args.pooling)
        for i in range(args.tables)
    ]
    arch = DenseArch(
        embedding_dim=args.dim,
        bottom_mlp=(64, args.dim),
        top_mlp=(64,),
    )
    model = DLRM(13, tables, arch, rng=np.random.default_rng(0))
    return Trainer(
        model,
        TrainConfig(
            batch_size=args.batch, sparse_grad_mode=mode, seed=0
        ),
    )


def bench_mode(args, mode: str) -> dict:
    """Measure one mode; returns per-phase seconds and peak step bytes."""
    trainer = build_trainer(args, mode)
    loss_mod = trainer.loss_module
    rng = np.random.default_rng(1)
    batches = [
        random_batch(
            args.batch, 13, args.tables, args.rows,
            pooling=args.pooling, rng=rng,
        )
        for _ in range(max(args.warmup, args.steps))
    ]

    def one_step(batch, timings=None):
        dense_x, ids, labels = batch
        trainer.dense_opt.zero_grad()
        trainer.sparse_opt.zero_grad()
        t0 = time.perf_counter()
        logits = trainer.model(dense_x, ids)
        loss_mod(logits, labels)
        t1 = time.perf_counter()
        trainer.model.backward(loss_mod.backward())
        t2 = time.perf_counter()
        trainer.dense_opt.step()
        trainer.sparse_opt.step()
        t3 = time.perf_counter()
        if timings is not None:
            timings["forward"].append(t1 - t0)
            timings["backward"].append(t2 - t1)
            timings["optimizer"].append(t3 - t2)
            timings["step"].append(t3 - t0)

    for i in range(args.warmup):
        one_step(batches[i])

    timings = {"forward": [], "backward": [], "optimizer": [], "step": []}
    tracemalloc.start(1)
    peak_step_bytes = 0
    for i in range(args.steps):
        tracemalloc.reset_peak()
        before, _ = tracemalloc.get_traced_memory()
        one_step(batches[i], timings)
        _, peak = tracemalloc.get_traced_memory()
        peak_step_bytes = max(peak_step_bytes, peak - before)
    tracemalloc.stop()

    sec_per_step = float(np.mean(timings["step"]))
    return {
        "mode": mode,
        "steps_measured": args.steps,
        "sec_per_step": sec_per_step,
        "steps_per_sec": 1.0 / sec_per_step,
        "peak_step_bytes": int(peak_step_bytes),
        "phase_sec": {
            k: float(np.mean(v))
            for k, v in timings.items()
            if k != "step"
        },
    }


def serving_trace(args):
    """The acceptance trace: skewed Poisson stream, micro-batched."""
    from repro.serving import MicroBatcher, RequestStream, WorkloadConfig

    stream = RequestStream(
        WorkloadConfig(
            qps=args.qps,
            num_requests=args.requests,
            num_lookups=args.lookups,
            key_space=args.key_space,
            skew=1.0,
            seed=0,
        )
    )
    requests = stream.generate()
    batches = MicroBatcher(args.serve_batch, 0.001).form_batches(requests)
    return requests, [batch.keys for batch in batches]


def bench_serving_cache(args, key_sets) -> dict:
    """Cache-lookup throughput: vectorized fast path vs reference walk.

    Replays the trace's batch key-sets through ``probe`` (the fused
    lookup + admit-the-misses the serving loop performs per batch);
    best-of-``reps`` wall-clock per implementation.
    """
    from repro.serving import LRUEmbeddingCache, ReferenceLRUCache

    total_keys = sum(len(keys) for keys in key_sets)
    out = {}
    for label, factory in (
        ("vectorized", LRUEmbeddingCache),
        ("reference", ReferenceLRUCache),
    ):
        best = np.inf
        for _ in range(args.reps):
            cache = factory(args.cache_rows)
            start = time.perf_counter()
            for keys in key_sets:
                cache.probe(keys)
            best = min(best, time.perf_counter() - start)
        out[label] = {
            "seconds": best,
            "keys_per_sec": total_keys / best,
            "hit_rate": cache.stats.hit_rate,
        }
        print(f"  cache [{label}]: {best:.3f}s "
              f"({total_keys / best / 1e6:.1f} Mkeys/s)", flush=True)
    out["speedup_vectorized_over_reference"] = (
        out["reference"]["seconds"] / out["vectorized"]["seconds"]
    )
    return out


def bench_serving_fleet(args, requests) -> dict:
    """End-to-end fleet replay: simulated rps + wall-clock/100k reqs."""
    from repro.hardware import Cluster
    from repro.serving import (
        MicroBatcher,
        Placement,
        ServingFleet,
        ServingModel,
    )
    from repro.sim import SimCluster

    cluster = Cluster(num_hosts=8, gpus_per_host=4, generation="A100")
    model = ServingModel(
        name="dlrm-like",
        num_lookups=args.lookups,
        embedding_dim=128,
        dense_mflops=5.0,
    )
    out = {}
    for router in ("round_robin", "hash", "p2c"):
        fleet = ServingFleet(
            SimCluster(cluster),
            model,
            Placement("disaggregated", emb_hosts=2),
            MicroBatcher(args.serve_batch, 0.001),
            router=router,
            cache_rows=args.cache_rows,
        )
        start = time.perf_counter()
        report = fleet.serve(requests)
        wall = time.perf_counter() - start
        out[router] = {
            "wall_clock_s": wall,
            "wall_clock_per_100k_requests_s": wall * 1e5 / len(requests),
            "simulated_rps": report.fleet.throughput_rps,
            "replay_requests_per_sec": len(requests) / wall,
            "p99_ms": report.fleet.latency_ms["p99"],
            "cache_hit_rate": report.fleet.cache_hit_rate,
            "load_imbalance": report.load_imbalance,
        }
        print(f"  fleet [{router}]: {wall:.2f}s wall "
              f"({len(requests) / wall / 1e3:.0f}k req/s replayed, "
              f"simulated {report.fleet.throughput_rps / 1e6:.2f}M rps)",
              flush=True)
    return out


def bench_serving(args) -> dict:
    print(f"benchmarking serving path ({args.requests} requests x "
          f"{args.lookups} lookups, serve batch {args.serve_batch}, "
          f"cache {args.cache_rows} rows) ...", flush=True)
    requests, key_sets = serving_trace(args)
    cache = bench_serving_cache(args, key_sets)
    fleet = bench_serving_fleet(args, requests)
    record = {
        "bench": "serving",
        "version": BENCH_VERSION,
        "generated_utc": datetime.now(timezone.utc).isoformat(),
        "config": {
            "requests": args.requests,
            "lookups_per_request": args.lookups,
            "key_space": args.key_space,
            "serve_batch": args.serve_batch,
            "cache_rows": args.cache_rows,
            "qps": args.qps,
            "fast": bool(args.fast),
        },
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "results": {"cache": cache, "fleet": fleet},
        "speedup_cache_vectorized_over_reference": (
            cache["speedup_vectorized_over_reference"]
        ),
    }
    with open(args.out, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(f"cache-lookup speedup (vectorized over reference): "
          f"{record['speedup_cache_vectorized_over_reference']:.1f}x "
          f"-> wrote {args.out}")
    return record


def bench_tiering(args) -> dict:
    """p99 and $/1k requests vs capacity pressure, both storage arms."""
    from repro.hardware import Cluster
    from repro.serving import (
        InferenceService,
        LRUEmbeddingCache,
        MicroBatcher,
        Placement,
        RequestStream,
        ServingModel,
        WorkloadConfig,
        build_storage,
        dollars_per_1k_requests,
        make_tiered_service,
        storage_dollars,
    )
    from repro.sim import SimCluster

    cluster = Cluster(num_hosts=8, gpus_per_host=4, generation="A100")
    model = ServingModel(
        name="dlrm-like",
        num_lookups=args.lookups,
        embedding_dim=128,
        dense_mflops=5.0,
    )
    row_bytes = model.embedding_dim * 4
    ratios = (4, 16, 64)
    print(f"benchmarking tiering ({args.requests} requests, cache "
          f"{args.cache_rows} rows, pressure {ratios}) ...", flush=True)
    points = {}
    for ratio in ratios:
        key_space = args.cache_rows * ratio
        requests = RequestStream(
            WorkloadConfig(
                qps=args.qps,
                num_requests=args.requests,
                num_lookups=args.lookups,
                key_space=key_space,
                skew=1.05,
                seed=0,
            )
        ).generate()
        point = {}
        for label in ("all-hbm", "tiered"):
            sim = SimCluster(cluster)
            placement = Placement("disaggregated", emb_hosts=2)
            batcher = MicroBatcher(args.serve_batch, 0.001)
            if label == "tiered":
                storage = build_storage(
                    "A100",
                    args.cache_rows,
                    levels=("dram",),
                    cache_rows=(key_space // 2,),
                    backing="remote",
                )
                service = make_tiered_service(
                    sim, model, placement, batcher, storage
                )
            else:
                storage = build_storage(
                    "A100", args.cache_rows, backing="hbm"
                )
                service = InferenceService(
                    sim,
                    model,
                    placement,
                    batcher,
                    LRUEmbeddingCache(args.cache_rows),
                )
            start = time.perf_counter()
            report = service.serve(requests)
            wall = time.perf_counter() - start
            dollars = storage_dollars(
                storage, row_bytes, backing_rows=key_space
            )
            point[label] = {
                "p99_ms": report.latency_ms["p99"],
                "cache_hit_rate": report.cache_hit_rate,
                "dollars": dollars,
                "dollars_per_1k_requests": dollars_per_1k_requests(
                    dollars, report.throughput_rps
                ),
                "wall_clock_s": wall,
            }
        point["p99_ratio_tiered_over_hbm"] = (
            point["tiered"]["p99_ms"] / point["all-hbm"]["p99_ms"]
        )
        point["cost_ratio_tiered_over_hbm"] = (
            point["tiered"]["dollars"] / point["all-hbm"]["dollars"]
        )
        points[f"{ratio}x"] = point
        print(f"  {ratio:3d}x: p99 ratio "
              f"{point['p99_ratio_tiered_over_hbm']:.2f}, cost ratio "
              f"{point['cost_ratio_tiered_over_hbm']:.2f}", flush=True)

    worst_ratio = max(
        p["p99_ratio_tiered_over_hbm"] for p in points.values()
    )
    best_cost = min(
        p["cost_ratio_tiered_over_hbm"] for p in points.values()
    )
    record = {
        "bench": "tiering",
        "version": BENCH_VERSION,
        "generated_utc": datetime.now(timezone.utc).isoformat(),
        "config": {
            "requests": args.requests,
            "lookups_per_request": args.lookups,
            "cache_rows": args.cache_rows,
            "ratios": list(ratios),
            "qps": args.qps,
            "fast": bool(args.fast),
        },
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "results": points,
        "worst_p99_ratio_tiered_over_hbm": worst_ratio,
        "best_cost_ratio_tiered_over_hbm": best_cost,
    }
    with open(args.out, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(f"tiered worst p99 inflation {worst_ratio:.2f}x, best cost "
          f"ratio {best_cost:.2f}x -> wrote {args.out}")
    return record


def bench_faults(args) -> dict:
    """Retry overhead, degraded-serve fraction, MTTR vs cadence."""
    from repro.api import (
        ClusterSpec,
        FaultSpec,
        RunSpec,
        ServeSpec,
        Session,
    )

    qps = 4_000_000.0
    span = args.requests / qps
    cadences_s = (0.0, 0.001, 0.002, 0.004, 0.008)
    cluster = ClusterSpec(num_hosts=8, gpus_per_host=4, generation="A100")

    def serve_section() -> ServeSpec:
        # 4 fetch hosts so replica count (not the shared fetch tier)
        # bounds capacity — same geometry as the fault_tolerance
        # experiment, scaled by --requests.
        return ServeSpec(
            kind="dlrm",
            qps=qps,
            num_requests=args.requests,
            placement="disaggregated",
            emb_hosts=4,
            fleet_replicas=3,
            router="round_robin",
            cache_rows=args.cache_rows,
            key_space=20_000,
            skew=1.2,
        )

    def crash_faults(crashes: int, period_s: float) -> FaultSpec:
        return FaultSpec(
            seed=3,
            replica_crashes=crashes,
            start_s=0.3 * span,
            end_s=0.6 * span,
            timeout_ms=0.5,
            detection_ms=0.3,
            restore_ms=0.3,
            checkpoint_period_s=period_s,
            cold_rebuild_ms=5.0,
            warm_rows=8192,
        )

    print(f"benchmarking fault tolerance ({args.requests} requests, "
          f"3 replicas, cache {args.cache_rows} rows) ...", flush=True)

    base_spec = RunSpec(
        name="bench-faults-baseline", cluster=cluster, serve=serve_section()
    )
    base_p99 = (
        Session(base_spec).serve().reports["disaggregated"].latency_ms["p99"]
    )
    print(f"  baseline (no faults): p99 {base_p99:.3f} ms", flush=True)

    crash_spec = RunSpec(
        name="bench-faults-crash",
        cluster=cluster,
        serve=serve_section(),
        faults=crash_faults(crashes=2, period_s=0.002),
    )
    crash = Session(crash_spec).serve().fault_reports["disaggregated"]
    crash_p99 = crash.fleet.fleet.latency_ms["p99"]
    print(f"  crash storm + retries: p99 {crash_p99:.3f} ms "
          f"({crash_p99 / base_p99:.2f}x baseline), retried "
          f"{crash.retried_fraction * 100.0:.2f}%, lost "
          f"{crash.lost_fraction * 100.0:.2f}%", flush=True)

    outage_spec = RunSpec(
        name="bench-faults-outage",
        cluster=cluster,
        serve=serve_section(),
        faults=FaultSpec(
            seed=7,
            fetch_outages=1,
            outage_duration_s=0.2 * span,
            start_s=0.3 * span,
            end_s=0.6 * span,
            timeout_ms=0.5,
        ),
    )
    outage = Session(outage_spec).serve().fault_reports["disaggregated"]
    print(f"  fetch outage (degraded mode): served degraded "
          f"{outage.degraded_fraction * 100.0:.2f}%, lost "
          f"{outage.lost_fraction * 100.0:.2f}%", flush=True)

    mttr_by_cadence = {}
    mttr_ladder = []
    for period in cadences_s:
        spec = RunSpec(
            name=f"bench-faults-cadence-{period:g}",
            cluster=cluster,
            serve=serve_section(),
            faults=crash_faults(crashes=1, period_s=period),
        )
        report = Session(spec).serve().fault_reports["disaggregated"]
        mttr_ms = report.mttr_s * 1e3
        mttr_ladder.append(mttr_ms)
        label = "cold" if period == 0 else f"{period * 1e3:g}ms"
        mttr_by_cadence[label] = mttr_ms
    # Cold rebuild (index 0) is the ceiling; among real cadences MTTR
    # must rise with the period (replaying a longer tail of traffic).
    monotone = all(
        mttr_ladder[i] < mttr_ladder[i + 1]
        for i in range(1, len(mttr_ladder) - 1)
    ) and all(m < mttr_ladder[0] for m in mttr_ladder[1:])
    print("  MTTR ladder: "
          + ", ".join(f"{k}={v:.2f}ms" for k, v in mttr_by_cadence.items())
          + f" (monotone: {monotone})", flush=True)

    record = {
        "bench": "faults",
        "version": BENCH_VERSION,
        "generated_utc": datetime.now(timezone.utc).isoformat(),
        "config": {
            "requests": args.requests,
            "qps": qps,
            "cache_rows": args.cache_rows,
            "cadences_s": list(cadences_s),
            "fast": bool(args.fast),
        },
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "results": {
            "baseline": {"p99_ms": base_p99},
            "crash_retry": {
                "spec": crash_spec.to_dict(),
                "p99_ms": crash_p99,
                "retried_fraction": crash.retried_fraction,
                "num_retries": crash.num_retries,
                "lost_fraction": crash.lost_fraction,
                "mttr_ms": crash.mttr_s * 1e3,
            },
            "outage_degraded": {
                "spec": outage_spec.to_dict(),
                "degraded_fraction": outage.degraded_fraction,
                "lost_fraction": outage.lost_fraction,
                "quality_cost": outage.quality_cost,
            },
            "mttr_by_cadence_ms": mttr_by_cadence,
        },
        "retry_overhead_p99_ratio": crash_p99 / base_p99,
        "degraded_serve_fraction": outage.degraded_fraction,
        "mttr_monotone_in_cadence": monotone,
    }
    with open(args.out, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(f"retry overhead {record['retry_overhead_p99_ratio']:.2f}x p99, "
          f"degraded-serve {outage.degraded_fraction * 100.0:.2f}%, MTTR "
          f"monotone={monotone} -> wrote {args.out}")
    return record


def bench_freshness(args) -> dict:
    """Online-vs-frozen AUC gain and delta-checkpoint compression."""
    import tempfile

    from repro.experiments.model_freshness import freshness_spec
    from repro.api import Session

    fast = bool(args.fast)
    print(f"benchmarking model freshness "
          f"({'fast' if fast else 'full'} geometry) ...", flush=True)
    start = time.perf_counter()
    with tempfile.TemporaryDirectory() as tmp:
        spec = freshness_spec(fast, directory=tmp)
        if args.requests is not None:
            spec = spec.replace(
                serve=spec.serve.replace(num_requests=args.requests)
            )
        art = Session(spec).online()
    wall = time.perf_counter() - start

    rep = art.report
    summary = art.summary()
    auc_gain = art.mean_online_auc - art.mean_frozen_auc
    for w in rep.windows:
        print(f"  window {w['window']}: frozen {w['frozen_auc']:.4f} "
              f"vs online {w['online_auc']:.4f} "
              f"(serving v{w['deployed_version']}, "
              f"staleness {w['staleness_windows']})", flush=True)

    record = {
        "bench": "freshness",
        "version": BENCH_VERSION,
        "generated_utc": datetime.now(timezone.utc).isoformat(),
        "config": {
            "spec": spec.to_dict(),
            "fast": fast,
        },
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "results": {
            "online": summary,
            "windows": rep.windows,
            "num_swaps": len(art.swap_events),
            "wall_clock_s": wall,
        },
        "mean_auc_gain_online_over_frozen": auc_gain,
        "freshness_dominates": bool(art.freshness_dominates),
        "delta_compression_over_full": rep.delta_compression,
    }
    with open(args.out, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(f"mean AUC gain (online over frozen): {auc_gain:+.4f} "
          f"(dominates: {record['freshness_dominates']}), deltas "
          f"{rep.delta_compression:.1f}x smaller than full saves "
          f"-> wrote {args.out}")
    return record


def bench_ab(args) -> dict:
    """Paired multi-task A/B: DBMTL-over-shared-bottom per-task deltas."""
    from repro.api import Session
    from repro.experiments.multi_task_ab import ab_spec

    fast = bool(args.fast)
    print(f"benchmarking multi-task A/B "
          f"({'fast' if fast else 'full'} geometry) ...", flush=True)
    start = time.perf_counter()
    spec = ab_spec(fast)
    art = Session(spec).ab()
    wall = time.perf_counter() - start

    for task in art.tasks:
        cell = art.delta(task, "auc")
        print(f"  {task}: AUC delta {cell['mean_delta']:+.4f} "
              f"[{cell['ci_low']:+.4f}, {cell['ci_high']:+.4f}] "
              f"(excludes zero: {cell['excludes_zero']})", flush=True)

    cvr = art.delta("cvr", "auc")
    record = {
        "bench": "ab",
        "version": BENCH_VERSION,
        "generated_utc": datetime.now(timezone.utc).isoformat(),
        "config": {
            "spec": spec.to_dict(),
            "fast": fast,
        },
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "results": {
            "ab": art.summary(),
            "wall_clock_s": wall,
        },
        "cvr_auc_delta_dbmtl_over_shared": cvr["mean_delta"],
        "cvr_auc_ci_excludes_zero": bool(cvr["excludes_zero"]),
    }
    with open(args.out, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(f"CVR AUC delta (dbmtl over shared_bottom): "
          f"{cvr['mean_delta']:+.4f} "
          f"(CI excludes zero: {record['cvr_auc_ci_excludes_zero']}) "
          f"-> wrote {args.out}")
    return record


def bench_sparse(args) -> dict:
    results = {}
    for mode in ("rowwise", "dense"):
        print(f"benchmarking sparse_grad_mode={mode} "
              f"({args.tables} tables x {args.rows} rows x {args.dim} dim, "
              f"batch {args.batch}) ...", flush=True)
        results[mode] = bench_mode(args, mode)
        print(f"  {results[mode]['sec_per_step']:.4f} s/step, "
              f"peak {results[mode]['peak_step_bytes'] / 1e6:.1f} MB/step",
              flush=True)

    record = {
        "bench": "sparse_path",
        "version": BENCH_VERSION,
        "generated_utc": datetime.now(timezone.utc).isoformat(),
        "config": {
            "tables": args.tables,
            "rows": args.rows,
            "dim": args.dim,
            "batch": args.batch,
            "pooling": args.pooling,
            "fast": bool(args.fast),
        },
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "results": results,
        "speedup_rowwise_over_dense": (
            results["dense"]["sec_per_step"]
            / results["rowwise"]["sec_per_step"]
        ),
        "memory_ratio_dense_over_rowwise": (
            results["dense"]["peak_step_bytes"]
            / max(results["rowwise"]["peak_step_bytes"], 1)
        ),
    }
    with open(args.out, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(f"speedup (rowwise over dense): "
          f"{record['speedup_rowwise_over_dense']:.1f}x -> wrote {args.out}")
    return record


def main(argv=None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench",
                        choices=("sparse", "serving", "tiering", "faults",
                                 "freshness", "ab"),
                        default="sparse")
    parser.add_argument("--fast", action="store_true",
                        help="CI smoke geometry (seconds, not minutes)")
    parser.add_argument("--tables", type=int, default=None)
    parser.add_argument("--rows", type=int, default=None)
    parser.add_argument("--dim", type=int, default=None)
    parser.add_argument("--batch", type=int, default=256)
    parser.add_argument("--pooling", type=int, default=1)
    parser.add_argument("--steps", type=int, default=None,
                        help="measured steps (per mode)")
    parser.add_argument("--warmup", type=int, default=None)
    # serving-bench knobs
    parser.add_argument("--requests", type=int, default=None,
                        help="serving trace length (default 100k)")
    parser.add_argument("--lookups", type=int, default=26)
    parser.add_argument("--key-space", type=int, default=100_000)
    parser.add_argument("--serve-batch", type=int, default=256)
    parser.add_argument("--cache-rows", type=int, default=16_384)
    parser.add_argument("--qps", type=float, default=500_000.0)
    parser.add_argument("--reps", type=int, default=3,
                        help="best-of repetitions for cache timings")
    parser.add_argument("--out", default=None)
    args = parser.parse_args(argv)

    if args.out is None:
        args.out = {
            "serving": "BENCH_serving.json",
            "tiering": "BENCH_tiering.json",
            "faults": "BENCH_faults.json",
            "freshness": "BENCH_freshness.json",
            "ab": "BENCH_ab.json",
            "sparse": "BENCH_sparse_path.json",
        }[args.bench]
    if args.bench == "serving":
        if args.requests is None:
            args.requests = 10_000 if args.fast else 100_000
        return bench_serving(args)
    if args.bench == "tiering":
        if args.requests is None:
            args.requests = 4_000 if args.fast else 50_000
        return bench_tiering(args)
    if args.bench == "faults":
        if args.requests is None:
            args.requests = 30_000 if args.fast else 120_000
        return bench_faults(args)
    if args.bench == "freshness":
        # requests default comes from the spec geometry; --requests
        # overrides the serve trace length if given.
        return bench_freshness(args)
    if args.bench == "ab":
        return bench_ab(args)

    if args.fast:
        defaults = dict(tables=8, rows=20_000, dim=32, steps=5, warmup=2)
    else:
        # Acceptance geometry; dense rewrites the full ~26 GB optimizer
        # state each step, so one warmed-up step is all we can afford.
        defaults = dict(tables=26, rows=1_000_000, dim=128, steps=1, warmup=1)
    for key, value in defaults.items():
        if getattr(args, key) is None:
            setattr(args, key, value)
    return bench_sparse(args)


if __name__ == "__main__":
    main()
