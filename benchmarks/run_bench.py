#!/usr/bin/env python
"""Sparse-path benchmark emitter: dense vs rowwise embedding gradients.

Times the single-process train step (forward / backward / optimizer
phases, separately and end-to-end) of a DLRM under both
``sparse_grad_mode`` settings and writes a ``BENCH_sparse_path.json``
record — steps/sec and peak transient bytes allocated per step — so
perf PRs leave a measured trajectory instead of claims.

Default (paper-ish) config is the acceptance geometry: 26 tables x
1M rows x dim 128 at batch 256 (the dense reference rewrites ~26 GB of
optimizer state per step at this size, so it runs very few steps).
``--fast`` shrinks everything for CI smoke.

Run:  PYTHONPATH=src python benchmarks/run_bench.py [--fast] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import platform
import time
import tracemalloc
from datetime import datetime, timezone

import numpy as np

from repro.data import random_batch
from repro.models import DLRM
from repro.models.configs import DenseArch
from repro.nn import TableConfig
from repro.training import TrainConfig, Trainer

BENCH_VERSION = 1


def build_trainer(args, mode: str) -> Trainer:
    tables = [
        TableConfig(f"t{i}", args.rows, args.dim, pooling=args.pooling)
        for i in range(args.tables)
    ]
    arch = DenseArch(
        embedding_dim=args.dim,
        bottom_mlp=(64, args.dim),
        top_mlp=(64,),
    )
    model = DLRM(13, tables, arch, rng=np.random.default_rng(0))
    return Trainer(
        model,
        TrainConfig(
            batch_size=args.batch, sparse_grad_mode=mode, seed=0
        ),
    )


def bench_mode(args, mode: str) -> dict:
    """Measure one mode; returns per-phase seconds and peak step bytes."""
    trainer = build_trainer(args, mode)
    loss_mod = trainer.loss_module
    rng = np.random.default_rng(1)
    batches = [
        random_batch(
            args.batch, 13, args.tables, args.rows,
            pooling=args.pooling, rng=rng,
        )
        for _ in range(max(args.warmup, args.steps))
    ]

    def one_step(batch, timings=None):
        dense_x, ids, labels = batch
        trainer.dense_opt.zero_grad()
        trainer.sparse_opt.zero_grad()
        t0 = time.perf_counter()
        logits = trainer.model(dense_x, ids)
        loss_mod(logits, labels)
        t1 = time.perf_counter()
        trainer.model.backward(loss_mod.backward())
        t2 = time.perf_counter()
        trainer.dense_opt.step()
        trainer.sparse_opt.step()
        t3 = time.perf_counter()
        if timings is not None:
            timings["forward"].append(t1 - t0)
            timings["backward"].append(t2 - t1)
            timings["optimizer"].append(t3 - t2)
            timings["step"].append(t3 - t0)

    for i in range(args.warmup):
        one_step(batches[i])

    timings = {"forward": [], "backward": [], "optimizer": [], "step": []}
    tracemalloc.start(1)
    peak_step_bytes = 0
    for i in range(args.steps):
        tracemalloc.reset_peak()
        before, _ = tracemalloc.get_traced_memory()
        one_step(batches[i], timings)
        _, peak = tracemalloc.get_traced_memory()
        peak_step_bytes = max(peak_step_bytes, peak - before)
    tracemalloc.stop()

    sec_per_step = float(np.mean(timings["step"]))
    return {
        "mode": mode,
        "steps_measured": args.steps,
        "sec_per_step": sec_per_step,
        "steps_per_sec": 1.0 / sec_per_step,
        "peak_step_bytes": int(peak_step_bytes),
        "phase_sec": {
            k: float(np.mean(v))
            for k, v in timings.items()
            if k != "step"
        },
    }


def main(argv=None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true",
                        help="CI smoke geometry (seconds, not minutes)")
    parser.add_argument("--tables", type=int, default=None)
    parser.add_argument("--rows", type=int, default=None)
    parser.add_argument("--dim", type=int, default=None)
    parser.add_argument("--batch", type=int, default=256)
    parser.add_argument("--pooling", type=int, default=1)
    parser.add_argument("--steps", type=int, default=None,
                        help="measured steps (per mode)")
    parser.add_argument("--warmup", type=int, default=None)
    parser.add_argument("--out", default="BENCH_sparse_path.json")
    args = parser.parse_args(argv)

    if args.fast:
        defaults = dict(tables=8, rows=20_000, dim=32, steps=5, warmup=2)
    else:
        # Acceptance geometry; dense rewrites the full ~26 GB optimizer
        # state each step, so one warmed-up step is all we can afford.
        defaults = dict(tables=26, rows=1_000_000, dim=128, steps=1, warmup=1)
    for key, value in defaults.items():
        if getattr(args, key) is None:
            setattr(args, key, value)

    results = {}
    for mode in ("rowwise", "dense"):
        print(f"benchmarking sparse_grad_mode={mode} "
              f"({args.tables} tables x {args.rows} rows x {args.dim} dim, "
              f"batch {args.batch}) ...", flush=True)
        results[mode] = bench_mode(args, mode)
        print(f"  {results[mode]['sec_per_step']:.4f} s/step, "
              f"peak {results[mode]['peak_step_bytes'] / 1e6:.1f} MB/step",
              flush=True)

    record = {
        "bench": "sparse_path",
        "version": BENCH_VERSION,
        "generated_utc": datetime.now(timezone.utc).isoformat(),
        "config": {
            "tables": args.tables,
            "rows": args.rows,
            "dim": args.dim,
            "batch": args.batch,
            "pooling": args.pooling,
            "fast": bool(args.fast),
        },
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "results": results,
        "speedup_rowwise_over_dense": (
            results["dense"]["sec_per_step"]
            / results["rowwise"]["sec_per_step"]
        ),
        "memory_ratio_dense_over_rowwise": (
            results["dense"]["peak_step_bytes"]
            / max(results["rowwise"]["peak_step_bytes"], 1)
        ),
    }
    with open(args.out, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(f"speedup (rowwise over dense): "
          f"{record['speedup_rowwise_over_dense']:.1f}x -> wrote {args.out}")
    return record


if __name__ == "__main__":
    main()
