"""Bench: Figure 11 — tower modules add gain on top of SPTT."""

from repro.experiments.figure11 import run


def test_figure11_tm_over_sptt(regen):
    result = regen(run)
    values = result.data
    # TM is always a win over SPTT-only (paper: 1.2-1.4x).
    assert all(v > 1.05 for v in values.values())
    # And the win is bounded (it is an increment, not the whole story).
    assert all(v < 1.8 for v in values.values())
