"""Micro-benchmarks of the library's own hot primitives.

Not a paper table — these track the simulator's performance so the
experiment suite stays fast: functional collectives, the SPTT exchange,
constrained K-Means, MDS, and a DLRM training step.
"""

import numpy as np
import pytest

from repro.comm import functional as F
from repro.comm.process_group import global_group
from repro.core.flat_pipeline import FlatEmbeddingExchange
from repro.core.partition import FeaturePartition
from repro.core.sptt import SPTTEmbeddingExchange
from repro.hardware import Cluster
from repro.models import DLRM, tiny_table_configs
from repro.models.configs import tiny_dlrm_arch
from repro.nn import BCEWithLogitsLoss
from repro.partitioner import ConstrainedKMeans, mds_embed
from repro.sim import SimCluster


@pytest.fixture(scope="module")
def cluster_16():
    return Cluster(num_hosts=4, gpus_per_host=4, generation="A100")


def test_bench_functional_alltoall(benchmark, cluster_16):
    group = global_group(cluster_16)
    rng = np.random.default_rng(0)
    buffers = {
        r: [rng.standard_normal(256) for _ in range(group.world_size)]
        for r in group.ranks
    }
    benchmark(F.alltoall, group, buffers)


def test_bench_sptt_exchange_forward(benchmark, cluster_16):
    from repro.nn import EmbeddingBagCollection

    F_feats = 16
    ebc = EmbeddingBagCollection(
        tiny_table_configs(F_feats, 64, 16), rng=np.random.default_rng(0)
    )
    partition = FeaturePartition.contiguous(F_feats, 4)
    rng = np.random.default_rng(1)
    ids = {
        r: rng.integers(0, 64, size=(8, F_feats))
        for r in range(cluster_16.world_size)
    }

    def run_once():
        sim = SimCluster(cluster_16)
        return SPTTEmbeddingExchange(sim, ebc, partition).forward(ids)

    benchmark(run_once)


def test_bench_flat_exchange_forward(benchmark, cluster_16):
    from repro.nn import EmbeddingBagCollection

    F_feats = 16
    ebc = EmbeddingBagCollection(
        tiny_table_configs(F_feats, 64, 16), rng=np.random.default_rng(0)
    )
    rng = np.random.default_rng(1)
    ids = {
        r: rng.integers(0, 64, size=(8, F_feats))
        for r in range(cluster_16.world_size)
    }

    def run_once():
        sim = SimCluster(cluster_16)
        return FlatEmbeddingExchange(sim, ebc).forward(ids)

    benchmark(run_once)


def test_bench_constrained_kmeans(benchmark):
    rng = np.random.default_rng(2)
    points = rng.standard_normal((128, 2))

    def cluster_points():
        return ConstrainedKMeans(n_clusters=8).fit_predict(
            points, rng=np.random.default_rng(0)
        )

    benchmark(cluster_points)


def test_bench_mds_embed(benchmark):
    rng = np.random.default_rng(3)
    x = rng.standard_normal((26, 3))
    d = np.linalg.norm(x[:, None] - x[None, :], axis=-1)
    benchmark(
        mds_embed, d, dim=2, iterations=100, rng=np.random.default_rng(0)
    )


def test_bench_dlrm_train_step(benchmark):
    model = DLRM(
        13,
        tiny_table_configs(26, 64, 16),
        tiny_dlrm_arch(16),
        rng=np.random.default_rng(0),
    )
    loss = BCEWithLogitsLoss()
    rng = np.random.default_rng(1)
    dense = rng.standard_normal((256, 13))
    ids = rng.integers(0, 64, size=(256, 26))
    labels = rng.integers(0, 2, size=256).astype(float)

    def step():
        model.zero_grad()
        loss(model(dense, ids), labels)
        model.backward(loss.backward())

    benchmark(step)
