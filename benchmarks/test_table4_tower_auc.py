"""Bench: Table 4 — AUC parity across tower counts."""

from repro.experiments.table4 import run


def test_table4_tower_count_auc(regen):
    result = regen(run)
    for kind in ("DLRM", "DCN"):
        base = result.data[f"{kind}/base"]
        for key, d in result.data.items():
            if not key.startswith(f"{kind}/") or key.endswith("base"):
                continue
            # Each DMT config near its baseline.  The paper reports
            # parity within one std at production scale; our shrunken
            # models carry a small (<0.008 AUC) systematic deficit at
            # aggressive per-tower compression, within the small-scale
            # noise envelope.
            tolerance = max(2.5 * (base["std"] + d["std"]), 0.008)
            assert abs(d["auc"] - base["auc"]) <= tolerance, (key, d, base)
