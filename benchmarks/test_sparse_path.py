"""Micro-benchmarks of the sparse embedding gradient path.

Times the embedding plane's fwd / bwd / optimizer phases at a
medium-large geometry under both ``sparse_grad_mode`` settings and
asserts the row-wise fast path's headline properties: a multiple-x
train-step speedup and a collapse in per-step transient allocation.
The full paper-scale (1M-row x 128-dim x 26-table) measurement lives
in ``benchmarks/run_bench.py`` / ``BENCH_sparse_path.json`` — these
stay small enough for every CI run.
"""

import time
import tracemalloc

import numpy as np
import pytest

from repro.data import random_batch
from repro.models import DLRM
from repro.models.configs import DenseArch
from repro.nn import EmbeddingBagCollection, RowwiseAdagrad, TableConfig
from repro.training import TrainConfig, Trainer

TABLES, ROWS, DIM, BATCH = 8, 100_000, 64, 256


def make_ebc(mode="rowwise"):
    ebc = EmbeddingBagCollection(
        [TableConfig(f"t{i}", ROWS, DIM) for i in range(TABLES)],
        rng=np.random.default_rng(0),
    )
    ebc.set_sparse_grad_mode(mode)
    return ebc


@pytest.fixture(scope="module")
def batch_ids():
    return np.random.default_rng(1).integers(0, ROWS, size=(BATCH, TABLES))


@pytest.fixture(scope="module")
def grad_out():
    return np.random.default_rng(2).standard_normal((BATCH, TABLES, DIM))


def test_bench_fused_forward(benchmark, batch_ids):
    ebc = make_ebc()
    benchmark(ebc.forward, batch_ids)


def test_bench_rowwise_backward(benchmark, batch_ids, grad_out):
    ebc = make_ebc()
    ebc(batch_ids)

    def bwd():
        for t in ebc.tables:
            t.weight.zero_grad()
        ebc.backward(grad_out)

    benchmark(bwd)


def test_bench_rowwise_optimizer_step(benchmark, batch_ids, grad_out):
    ebc = make_ebc()
    opt = RowwiseAdagrad([t.weight for t in ebc.tables], lr=0.01)

    def step():
        opt.zero_grad()
        ebc(batch_ids)
        ebc.backward(grad_out)
        opt.step()

    benchmark(step)


def _train_step_timer(mode, steps=3):
    """Best-of seconds/step and peak transient bytes of a DLRM train
    step.  Min over steps (not mean) so a contention spike on a busy CI
    runner cannot flip the speedup assertion."""
    arch = DenseArch(embedding_dim=DIM, bottom_mlp=(32,), top_mlp=(32,))
    model = DLRM(
        13,
        [TableConfig(f"t{i}", ROWS, DIM) for i in range(TABLES)],
        arch,
        rng=np.random.default_rng(0),
    )
    trainer = Trainer(
        model, TrainConfig(batch_size=BATCH, sparse_grad_mode=mode)
    )
    dense_x, ids, labels = random_batch(
        BATCH, 13, TABLES, ROWS, rng=np.random.default_rng(3)
    )
    trainer.train_batch(dense_x, ids, labels)  # warmup: allocate state
    tracemalloc.start(1)
    tracemalloc.reset_peak()
    before, _ = tracemalloc.get_traced_memory()
    best = np.inf
    for _ in range(steps):
        t0 = time.perf_counter()
        trainer.train_batch(dense_x, ids, labels)
        best = min(best, time.perf_counter() - t0)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return best, peak - before


def test_rowwise_step_beats_dense(benchmark):
    dense_sec, dense_bytes = _train_step_timer("dense")
    row_sec, row_bytes = benchmark.pedantic(
        _train_step_timer, args=("rowwise",), iterations=1, rounds=1
    )
    speedup = dense_sec / row_sec
    mem_ratio = dense_bytes / max(row_bytes, 1)
    # At 8 x 100k x 64 the dense path rewrites ~400 MB of optimizer
    # state per step; even this mid-size config clears 3x / 5x easily
    # (the 1M-row acceptance geometry clears 10x, see run_bench.py).
    assert speedup > 3.0, f"rowwise only {speedup:.2f}x faster than dense"
    assert mem_ratio > 5.0, (
        f"rowwise transient allocation only {mem_ratio:.1f}x below dense"
    )


def test_rowwise_step_touches_only_batch_rows():
    """Transient allocation of a rowwise step is O(batch), not O(table)."""
    _, row_bytes = _train_step_timer("rowwise", steps=1)
    table_bytes = TABLES * ROWS * DIM * 8
    assert row_bytes < table_bytes / 10
