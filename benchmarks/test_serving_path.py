"""Micro-benchmarks of the serving plane's hot paths.

Times the vectorized LRU embedding cache against the per-key reference
walk on a realistic micro-batched trace, and the fleet replay end to
end.  The full acceptance measurement (100k requests, the >=10x
cache-lookup throughput headline) lives in ``benchmarks/run_bench.py``
/ ``BENCH_serving.json`` — these stay small enough for every CI run and
assert conservative floors so a contended runner cannot flake them.
"""

import time

import numpy as np
import pytest

from repro.hardware import Cluster
from repro.serving import (
    LRUEmbeddingCache,
    MicroBatcher,
    Placement,
    ReferenceLRUCache,
    RequestStream,
    ServingFleet,
    ServingModel,
    WorkloadConfig,
)
from repro.sim import SimCluster

NUM_REQUESTS, NUM_LOOKUPS, KEY_SPACE, CACHE_ROWS = 20_000, 26, 100_000, 16_384
MAX_BATCH = 256


@pytest.fixture(scope="module")
def batch_keys():
    stream = RequestStream(
        WorkloadConfig(
            qps=500_000.0,
            num_requests=NUM_REQUESTS,
            num_lookups=NUM_LOOKUPS,
            key_space=KEY_SPACE,
            skew=1.0,
            seed=0,
        )
    )
    batches = MicroBatcher(MAX_BATCH, 0.001).form_batches(stream.generate())
    return [batch.keys for batch in batches]


def replay(cache, key_sets) -> float:
    start = time.perf_counter()
    for keys in key_sets:
        cache.probe(keys)
    return time.perf_counter() - start


def test_bench_vectorized_cache_replay(benchmark, batch_keys):
    benchmark(replay, LRUEmbeddingCache(CACHE_ROWS), batch_keys)


def test_bench_reference_cache_replay(benchmark, batch_keys):
    benchmark(replay, ReferenceLRUCache(CACHE_ROWS), batch_keys)


def test_vectorized_cache_beats_reference(batch_keys):
    """Regression floor for the cache fast path.  Best-of-3 on the
    vectorized side so one scheduler hiccup cannot flake CI; the
    committed BENCH_serving.json documents the full >=10x headline."""
    ref_seconds = replay(ReferenceLRUCache(CACHE_ROWS), batch_keys)
    fast_seconds = min(
        replay(LRUEmbeddingCache(CACHE_ROWS), batch_keys) for _ in range(3)
    )
    speedup = ref_seconds / fast_seconds
    assert speedup > 3.0, f"vectorized cache only {speedup:.2f}x faster"


def test_vectorized_cache_accounting_matches_reference(batch_keys):
    fast, ref = LRUEmbeddingCache(CACHE_ROWS), ReferenceLRUCache(CACHE_ROWS)
    for keys in batch_keys[:40]:
        fast_hits, fast_misses = fast.probe(keys)
        ref_hits, ref_misses = ref.probe(keys)
        assert fast_hits == ref_hits
        assert np.array_equal(fast_misses, ref_misses)
    assert fast.stats == ref.stats


def test_bench_fleet_replay(benchmark):
    reqs = RequestStream(
        WorkloadConfig(
            qps=1_000_000.0,
            num_requests=5_000,
            num_lookups=NUM_LOOKUPS,
            key_space=KEY_SPACE,
            skew=1.0,
            seed=0,
        )
    ).generate()
    cluster = Cluster(num_hosts=8, gpus_per_host=4, generation="A100")
    model = ServingModel(
        name="dlrm-like", num_lookups=NUM_LOOKUPS, embedding_dim=128,
        dense_mflops=5.0,
    )

    def serve():
        fleet = ServingFleet(
            SimCluster(cluster),
            model,
            Placement("disaggregated", emb_hosts=2),
            MicroBatcher(64, 0.001),
            router="round_robin",
            cache_rows=CACHE_ROWS,
        )
        return fleet.serve(reqs)

    report = benchmark(serve)
    assert report.fleet.num_requests == 5_000
    assert report.fleet.throughput_rps > 0
