"""Bench: Table 5 — AUC decays gradually with compression ratio."""

from repro.experiments.table5 import run


def test_table5_compression_auc(regen):
    result = regen(run)
    aucs = {cr: result.data[cr]["auc"] for cr in (2, 4, 8, 16)}
    # Mild compression stays near the top; extreme compression costs
    # measurably more (the paper's 'expected gradual degradation').
    assert aucs[2] >= aucs[16]
    assert aucs[2] - aucs[16] < 0.08  # and the model still works at CR=16
    # The two extremes bracket the middle settings.
    assert aucs[2] >= min(aucs[4], aucs[8]) - 0.01
    assert aucs[16] <= max(aucs[4], aucs[8]) + 0.01
