"""Bench: Figure 12 — higher compression ratio, higher speedup."""

from repro.experiments.figure12 import run


def test_figure12_compression_speedup(regen):
    result = regen(run)
    for gen in ("V100", "A100", "H100"):
        curve = [result.data[f"{gen}/CR{cr}"] for cr in (2, 4, 8, 16)]
        # Monotone increasing in CR.
        assert all(b > a for a, b in zip(curve, curve[1:])), (gen, curve)
        # Paper: up to ~2x at CR=16.
        assert 1.3 < curve[-1] < 2.4
