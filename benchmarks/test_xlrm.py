"""Bench: XLRM — quality-neutral, compute-bound lower speedup."""

from repro.experiments.xlrm import run


def test_xlrm_claims(regen):
    result = regen(run)
    # Quality: NE close to the flat model (paper: +0.02%).  Our
    # shrunken setup pays a small compression cost at CR=2, so the
    # tolerance reflects small-scale noise rather than parity.
    assert abs(result.data["ne_improvement_pct"]) < 8.0
    for gen in ("V100", "A100"):
        s = result.data["speedups"][gen]
        # XLRM speedup exists but is smaller than DLRM's at the same
        # scale (compute-bound), §5.3.1.
        assert 0.95 < s["xlrm"] < s["dlrm"]
