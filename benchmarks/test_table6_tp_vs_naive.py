"""Bench: Table 6 — TP beats the naive strided assignment."""

from repro.experiments.table6 import run


def test_table6_tp_beats_naive(regen):
    result = regen(run)
    # TP recovers the planted blocks far better than striding...
    assert result.data["tp_purity"] > result.data["naive_purity"] + 0.2
    # ...and converts that into a higher AUC median...
    assert result.data["tp_auc"] > result.data["naive_auc"]
    # ...with Mann-Whitney significance (paper: p <= 0.0023; our fast
    # mode runs 5 seeds so the threshold is looser).
    assert result.data["p_value"] < 0.1
