"""Benchmark-suite configuration.

Every benchmark regenerates one of the paper's tables/figures (writing
the output under ``results/``) and asserts its headline claims.  Run
with ``pytest benchmarks/ --benchmark-only``.
"""

import pytest


@pytest.fixture
def regen(benchmark):
    """Run an experiment once under the benchmark timer, save and
    return its result."""

    def _run(runner, fast: bool = True, save_dir: str = "results"):
        result = benchmark.pedantic(
            runner, kwargs={"fast": fast}, iterations=1, rounds=1
        )
        result.save(save_dir)
        return result

    return _run
