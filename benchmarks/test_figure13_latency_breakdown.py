"""Bench: Figure 13 — DMT improves every latency component."""

import pytest

from repro.experiments.figure13 import run


def test_figure13_component_latency(regen):
    result = regen(run)
    d = result.data
    # Anchored calibration points: within 15% of the paper's bars.
    assert d["baseline_compute_ms"] == pytest.approx(29.4, rel=0.15)
    assert d["baseline_emb_ms"] == pytest.approx(11.5, rel=0.15)
    assert d["dmt_emb_ms"] == pytest.approx(2.5, rel=0.25)
    # Both components improve; comm improves by a large factor
    # (paper: 4.6x) and compute by a modest one (paper: 1.4x).
    assert d["compute_gain"] > 1.0
    assert 3.0 < d["comm_gain"] < 6.5
