"""Bench: Table 3 — SPTT neutrality, as exact distributed equivalence."""

from repro.experiments.table3 import run


def test_table3_sptt_auc_neutrality(regen):
    result = regen(run)
    for kind in ("dlrm", "dcn"):
        d = result.data[kind]
        # Distributed SPTT training reproduces flat training's AUC to
        # floating-point noise — far stronger than the paper's
        # "within one standard deviation".
        assert d["delta"] < 1e-6, d
        assert d["flat_auc"] > 0.8  # and the models actually learned
