"""Bench: Figure 1 — exposed latency breakdown, DCN on 64xH100.

Shape to hold: compute dominates (~70%), exposed embedding
communication is the second-largest bucket (~25-30%), dense sync is
small (low single digits).
"""

from repro.experiments.figure1 import run


def test_figure1_breakdown(regen):
    result = regen(run)
    pct = result.data["percentages"]
    assert 55 <= pct["compute"] <= 82
    assert 18 <= pct["exposed_emb_comm"] <= 40
    assert pct["exposed_dense_sync"] < 6
    assert pct["exposed_emb_comm"] > pct["exposed_dense_sync"]
