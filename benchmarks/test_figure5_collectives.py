"""Bench: Figure 5 — collective bus bandwidth vs scale."""

import pytest

from repro.comm.calibration import (
    FIGURE5_ALLREDUCE_BUS_GBS,
    FIGURE5_ALLTOALL_BUS_GBS,
)
from repro.experiments.figure5 import run


def test_figure5_collective_scalability(regen):
    result = regen(run)
    ours = result.data
    # The model regenerates the measured curves within 2%.
    for world, paper in FIGURE5_ALLREDUCE_BUS_GBS.items():
        assert ours["allreduce"][world] == pytest.approx(paper, rel=0.02)
    for world, paper in FIGURE5_ALLTOALL_BUS_GBS.items():
        assert ours["alltoall"][world] == pytest.approx(paper, rel=0.02)
    # The qualitative cliff: AlltoAll collapses once it leaves the host.
    assert ours["alltoall"][8] / ours["alltoall"][16] > 3.5
