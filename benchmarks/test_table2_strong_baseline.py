"""Bench: Table 2 — the Strong Baseline recipe."""

from repro.experiments.table2 import run


def test_table2_strong_baseline(regen):
    result = regen(run)
    for model in ("DLRM", "DCN"):
        d = result.data[model]
        # Strong recipe at least matches the default recipe's AUC.
        assert d["strong_auc"] >= d["weak_auc"] - 0.003
        # Large batches shrink the (modeled) epoch time.  The paper
        # reports 13x (6.5h -> 29min); our iteration model has no
        # small-batch inefficiency floor, so the modeled gap is
        # smaller — assert the direction and a conservative factor.
        assert d["strong_epoch_min"] < d["weak_epoch_min"] / 1.5
