"""Distributed DMT training on a simulated cluster, verified exactly.

One RunSpec with ``train.mode='simulated'`` runs real multi-rank
training — model-parallel embedding tables, SPTT exchange, per-host
tower modules with intra-host gradient sync, and a data-parallel
overarch — on a simulated 2-host x 2-GPU cluster, and (because
``train.verify`` is on) checks step-by-step that it matches
single-process training on the same global batches.  Finishes with the
priced communication timeline.

Run:  python examples/distributed_training.py
"""

from repro.api import Session
from repro.api.presets import distributed_training_spec


def main() -> None:
    session = Session(distributed_training_spec())
    print(f"simulated cluster: {session.build_cluster()}")

    art = session.train()
    print(f"\n{'step':>4} {'distributed':>12} {'single-proc':>12} {'|delta|':>10}")
    for step, (dist_loss, ref_loss) in enumerate(
        zip(art.losses, art.ref_losses)
    ):
        print(
            f"{step:>4} {dist_loss:>12.6f} {ref_loss:>12.6f} "
            f"{abs(dist_loss - ref_loss):>10.2e}"
        )

    print(
        f"\nmax parameter drift after {len(art.losses)} steps: "
        f"{art.max_drift:.2e}"
    )

    print("\npriced timeline of the final step (per phase):")
    print(art.timeline)


if __name__ == "__main__":
    main()
