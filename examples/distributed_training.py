"""Distributed DMT training on a simulated cluster, verified exactly.

Runs real multi-rank training — model-parallel embedding tables, SPTT
exchange, per-host tower modules with intra-host gradient sync, and a
data-parallel overarch — on a simulated 2-host x 2-GPU cluster, and
checks step-by-step that it matches single-process training on the
same global batches.  Finishes with the priced communication timeline.

Run:  python examples/distributed_training.py
"""

import numpy as np

from repro.core.dmt_pipeline import DistributedDMTTrainer
from repro.core.partition import FeaturePartition
from repro.data import SyntheticCriteoConfig, SyntheticCriteoDataset
from repro.hardware import Cluster
from repro.models import DMTDLRM, tiny_table_configs
from repro.models.configs import DenseArch
from repro.nn import Adam, BCEWithLogitsLoss
from repro.sim import SimCluster

STEPS = 8
GLOBAL_BATCH = 128


def build_model(seed: int) -> DMTDLRM:
    return DMTDLRM(
        13,
        tiny_table_configs(8, 32, 16),
        FeaturePartition.contiguous(8, 2),
        DenseArch(embedding_dim=16, bottom_mlp=(32,), top_mlp=(32,)),
        tower_dim=8,
        rng=np.random.default_rng(seed),
    )


def main() -> None:
    dataset = SyntheticCriteoDataset(
        SyntheticCriteoConfig(num_sparse=8, num_blocks=2, cardinality=32),
        seed=0,
    )
    sim = SimCluster(Cluster(num_hosts=2, gpus_per_host=2, generation="A100"))
    print(f"simulated cluster: {sim.cluster}")

    dist_model = build_model(42)
    ref_model = build_model(42)
    trainer = DistributedDMTTrainer(sim, dist_model)
    opt_dist = Adam(dist_model.parameters(), lr=0.01)
    opt_ref = Adam(ref_model.parameters(), lr=0.01)
    loss_mod = BCEWithLogitsLoss()

    print(f"\n{'step':>4} {'distributed':>12} {'single-proc':>12} {'|delta|':>10}")
    for step in range(STEPS):
        dense, ids, labels = dataset.sample(GLOBAL_BATCH, seed=100 + step)
        dist_loss = trainer.fit_step(dense, ids, labels, [opt_dist])
        opt_ref.zero_grad()
        ref_loss = loss_mod(ref_model(dense, ids), labels)
        ref_model.backward(loss_mod.backward())
        opt_ref.step()
        print(
            f"{step:>4} {dist_loss:>12.6f} {ref_loss:>12.6f} "
            f"{abs(dist_loss - ref_loss):>10.2e}"
        )

    drift = max(
        float(np.abs(p1.data - p2.data).max())
        for p1, p2 in zip(dist_model.parameters(), ref_model.parameters())
    )
    print(f"\nmax parameter drift after {STEPS} steps: {drift:.2e}")

    print("\npriced timeline of the final step (per phase):")
    print(sim.timeline.format_table())


if __name__ == "__main__":
    main()
