"""End-to-end quality workflow on synthetic Criteo-like click logs.

The full §3.3 pipeline a practitioner would run:

1. generate click logs (planted block-structured interactions);
2. train a flat DLRM baseline;
3. probe its embeddings -> feature interaction matrix -> Tower
   Partitioner (coherent strategy);
4. train the DMT model under the learned partition (with compressing
   tower modules) and under the naive strided partition;
5. compare evaluation AUC/NE.

Run:  python examples/train_dmt_criteo.py
"""

import numpy as np

from repro.core.partition import FeaturePartition
from repro.data import SyntheticCriteoConfig, SyntheticCriteoDataset, train_eval_split
from repro.models import DLRM, DMTDLRM, tiny_table_configs
from repro.models.configs import DenseArch
from repro.partitioner import TowerPartitioner, interaction_from_activations
from repro.training import TrainConfig, Trainer

NUM_TOWERS = 4


def main() -> None:
    config = SyntheticCriteoConfig(
        num_sparse=26, num_blocks=4, cardinality=48, rho=0.9, noise=0.5,
        cross_strength=0.0,
    )
    dataset = SyntheticCriteoDataset(config, seed=0)
    (td, ti, tl), (ed, ei, el) = train_eval_split(
        *dataset.sample(12000, seed=1), eval_fraction=1 / 3
    )
    print(f"train {len(tl)} samples / eval {len(el)} samples")
    print(f"planted blocks: {dataset.true_partition.groups}")

    arch = DenseArch(embedding_dim=16, bottom_mlp=(32,), top_mlp=(64, 32))
    tables = tiny_table_configs(26, 48, 16)

    # 1-2. Flat baseline.
    baseline = DLRM(13, tables, arch, rng=np.random.default_rng(7))
    trainer = Trainer(
        baseline, TrainConfig(batch_size=256, epochs=2, seed=7, sparse_lr=0.05)
    )
    trainer.fit(td, ti, tl)
    base_eval = trainer.evaluate(ed, ei, el)
    print(f"\nflat DLRM baseline: {base_eval}")

    # 3. Probe + Tower Partitioner.
    interaction = interaction_from_activations(
        baseline.embeddings(ti[:6000]), center=True
    )
    tp = TowerPartitioner(NUM_TOWERS, strategy="coherent", mds_iterations=800)
    result = tp.partition_from_interaction(interaction, rng=np.random.default_rng(0))
    print(f"\nTP partition: {result.partition.groups}")
    print(
        f"within-group interaction: TP {result.within_group_interaction:.3f} "
        f"vs naive "
        f"{TowerPartitioner.within_group_score(interaction, FeaturePartition.strided(26, NUM_TOWERS)):.3f}"
    )

    # 4-5. DMT with learned vs naive partition (flat-bottleneck towers).
    for name, partition in (
        ("TP (coherent)", result.partition),
        ("naive strided", FeaturePartition.strided(26, NUM_TOWERS)),
    ):
        model = DMTDLRM(
            13, tables, partition, arch, tower_dim=1, c=0, p=1,
            rng=np.random.default_rng(11),
        )
        t = Trainer(model, TrainConfig(batch_size=256, epochs=2, seed=11))
        t.fit(td, ti, tl)
        ev = t.evaluate(ed, ei, el)
        print(f"DMT 4T-DLRM [{name:>14}]: {ev}  CR={model.compression_ratio():.0f}")


if __name__ == "__main__":
    main()
