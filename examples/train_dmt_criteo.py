"""End-to-end quality workflow on synthetic Criteo-like click logs.

The full §3.3 pipeline a practitioner would run, expressed as one
declarative RunSpec executed by the `repro.api` session layer:

1. generate click logs (planted block-structured interactions);
2. train a flat DLRM probe (the baseline);
3. probe its embeddings -> feature interaction matrix -> Tower
   Partitioner (coherent strategy);
4. train the DMT model under the learned partition (with compressing
   tower modules) and under the naive strided partition;
5. compare evaluation AUC/NE.

Run:  python examples/train_dmt_criteo.py
"""

from repro.api import Session
from repro.api.presets import naive_control_spec, train_dmt_criteo_spec
from repro.partitioner import TowerPartitioner


def main() -> None:
    spec = train_dmt_criteo_spec()
    tp_session = Session(spec)

    # 1. Click logs.
    data = tp_session.load_data()
    print(f"train {data.num_train} samples / eval {data.num_eval} samples")
    print(f"planted blocks: {data.dataset.true_partition.groups}")

    # 2-3. Flat probe baseline + Tower Partitioner (one cached stage).
    part = tp_session.partition()
    print(f"\nflat DLRM baseline: {part.probe_eval}")
    print(f"\nTP partition: {part.partition.groups}")

    # 4-5. DMT with learned vs naive partition (flat-bottleneck towers).
    naive_spec = naive_control_spec(spec)
    naive_session = Session(naive_spec)
    naive_wg = TowerPartitioner.within_group_score(
        part.tp_result.interaction, naive_session.partition().partition
    )
    print(
        f"within-group interaction: TP "
        f"{part.tp_result.within_group_interaction:.3f} vs naive {naive_wg:.3f}"
    )
    for label, session in (
        ("TP (coherent)", tp_session),
        ("naive strided", naive_session),
    ):
        art = session.train()
        print(
            f"DMT 4T-DLRM [{label:>14}]: {art.eval_result}  "
            f"CR={art.model.compression_ratio():.0f}"
        )

    print("\nre-execute this exact run:  dmt-repro run-spec spec.json")
    print("(write the spec with: spec.save('spec.json'))")


if __name__ == "__main__":
    main()
