"""Scaling study: where does DMT win, and why?

Sweeps cluster sizes and GPU generations, printing per-scale iteration
breakdowns and speedups (a condensed Figure 10), then decomposes the
gain at one large scale into its SPTT and tower-module parts (Figure
11's question) and shows the NeuroShard negative result (§2.4).

Run:  python examples/scaling_study.py
"""

from repro.experiments.common import dmt_profile_for_towers
from repro.hardware import Cluster
from repro.models import criteo_table_configs
from repro.perf.iteration_model import IterationLatencyModel
from repro.perf.profiles import paper_dlrm_profile, sptt_only_profile
from repro.planner import balance_analysis

LOCAL_BATCH = 16384


def main() -> None:
    model = IterationLatencyModel()
    base_profile = paper_dlrm_profile()

    print("DLRM: iteration latency and DMT speedup vs scale")
    print(f"{'platform':>9} {'GPUs':>5} {'baseline ms':>12} {'DMT ms':>8} {'speedup':>8}")
    for gen in ("V100", "A100", "H100"):
        sizes = (16, 64, 128) if gen == "V100" else (16, 64, 512)
        for gpus in sizes:
            cluster = Cluster(gpus // 8, 8, gen)
            baseline = model.hybrid(base_profile, cluster, LOCAL_BATCH)
            dmt = model.dmt(
                dmt_profile_for_towers("dlrm", gpus // 8), cluster, LOCAL_BATCH
            )
            print(
                f"{gen:>9} {gpus:>5} {baseline.total_s * 1e3:>12.2f} "
                f"{dmt.total_s * 1e3:>8.2f} {dmt.speedup_over(baseline):>7.2f}x"
            )

    # Decompose the gain at 512 H100s.
    cluster = Cluster(64, 8, "H100")
    baseline = model.hybrid(base_profile, cluster, LOCAL_BATCH)
    sptt = model.dmt(sptt_only_profile(base_profile, 64), cluster, LOCAL_BATCH)
    full = model.dmt(dmt_profile_for_towers("dlrm", 64), cluster, LOCAL_BATCH)
    print("\ngain decomposition at 512xH100 (DLRM):")
    print(f"  SPTT alone:        {sptt.speedup_over(baseline):.2f}x")
    print(f"  + tower modules:   {full.speedup_over(sptt):.2f}x additional")
    print(f"  total DMT:         {full.speedup_over(baseline):.2f}x")

    # §2.4: perfect balance cannot fix the global AlltoAll.
    analysis = balance_analysis(
        criteo_table_configs(), Cluster(8, 8, "A100"), batch_size=16384
    )
    print("\nNeuroShard-style balance (§2.4 negative result):")
    print(
        f"  load imbalance: {analysis.imbalance_naive:.2f} -> "
        f"{analysis.imbalance_balanced:.2f} "
        f"({analysis.straggler_gain:.1f}x more balanced)"
    )
    print(
        f"  AlltoAll time:  {analysis.alltoall_seconds_naive * 1e3:.1f} ms -> "
        f"{analysis.alltoall_seconds_balanced * 1e3:.1f} ms "
        f"(only {analysis.alltoall_gain:.2f}x)"
    )
    print("  balance helps stragglers; it cannot reduce bytes per NIC.")


if __name__ == "__main__":
    main()
