"""Checkpoint & resume: crash a training run, resume it bit-identically,
then re-place it on a bigger cluster.

One declarative RunSpec with a checkpoint section: periodic auto-saves
land in ``--out`` every 5 optimizer steps; the run is "crashed"
mid-epoch, resumed from the newest save in a fresh session, and the
resumed loss history / eval AUC are compared bit-for-bit against an
uninterrupted run.  Finally the saved checkpoint is elastically
restored onto a cluster twice the size — the tower partitioner re-runs
over the saved tables and the migration is priced through the
collective cost model.

Run:  python examples/checkpoint_resume.py [--out checkpoints]
"""

import argparse
import os

from repro.api import (
    CheckpointSpec,
    ClusterSpec,
    DataSpec,
    ModelSpec,
    RunSpec,
    Session,
    TrainSpec,
)
from repro.checkpoint import CheckpointManager, checkpoint_step


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--out", default="checkpoints")
    args = parser.parse_args()

    spec = RunSpec(
        name="resume-demo",
        cluster=ClusterSpec(num_hosts=2, gpus_per_host=2),
        data=DataSpec(num_sparse=8, cardinality=32, num_blocks=2,
                      num_samples=1500),
        model=ModelSpec(family="dlrm", variant="flat", embedding_dim=8,
                        bottom_mlp=(16,), top_mlp=(16,)),
        train=TrainSpec(mode="single", batch_size=64, epochs=2),
        checkpoint=CheckpointSpec(directory=args.out, save_every_steps=5),
    )

    print("arm 1: uninterrupted run (with periodic auto-save)")
    reference = Session(spec).train()
    print(f"  epoch losses: {[round(x, 6) for x in reference.epoch_losses]}")
    print(f"  eval AUC:     {reference.eval_result.auc:.6f}")

    manager = CheckpointManager(os.path.join(args.out, spec.name))
    # The older retained save sits mid-epoch-2: resuming from it replays
    # the interrupted epoch's exact shuffle tail.
    latest = manager.step_path(manager.saved_steps()[0])
    print(f"\narm 2: resume from {latest} (step {checkpoint_step(latest)})")
    resumed = Session(
        spec.replace(
            checkpoint=spec.checkpoint.replace(
                save_every_steps=0, resume_from=latest
            )
        )
    ).resume()
    print(f"  loss history bit-identical: "
          f"{resumed.trainer.loss_history == reference.trainer.loss_history}")
    print(f"  eval AUC bit-identical:     "
          f"{resumed.eval_result.auc == reference.eval_result.auc}")

    print("\narm 3: elastic restore onto 2x the hosts")
    bigger = Session(
        spec.replace(
            cluster=ClusterSpec(num_hosts=4, gpus_per_host=2),
            checkpoint=spec.checkpoint.replace(
                save_every_steps=0, resume_from=latest
            ),
        )
    )
    plan = bigger.elastic_plan()
    summary = plan.summary()
    print(f"  {summary['source_world']} -> {summary['target_world']} ranks, "
          f"{summary['num_towers']} towers ({summary['partition_source']})")
    print(f"  migration: {summary['moved_mb']:.3f} MB "
          f"({summary['moved_fraction'] * 100:.0f}% of table bytes) "
          f"priced at {summary['migration_ms']:.3f} ms")

    print(f"\nsample checkpoint manifest: {latest}/manifest.json")


if __name__ == "__main__":
    main()
