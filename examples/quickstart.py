"""Quickstart: price a training iteration under both paradigms.

One declarative RunSpec — the paper's 64xH100 cluster with the measured
DCN profile — priced through the `repro.api` session layer: hybrid
baseline vs DMT iteration latency, the 60-second version of Figures 1
and 13.

Run:  python examples/quickstart.py
"""

from repro.api import Session
from repro.api.presets import quickstart_spec


def main() -> None:
    spec = quickstart_spec()
    session = Session(spec)
    print(f"cluster: {session.build_cluster()}")

    price = session.price()
    baseline, dmt = price.baseline, price.dmt

    print("\nper-iteration latency (one GPU):")
    print(" ", baseline.format_row())
    print(" ", dmt.format_row())

    print("\nbaseline breakdown (cf. paper Figure 1):")
    for component, share in baseline.percentages().items():
        print(f"  {component:<20} {share:5.1f}%")

    print(f"\nDMT speedup: {price.speedup:.2f}x")
    print(
        "paper: ~1.6x for DCN at 64 GPUs; up to 1.9x for DLRM at larger scale"
    )

    print("\nthe same run as a declarative spec (dmt-repro run-spec):")
    print(spec.to_json())


if __name__ == "__main__":
    main()
