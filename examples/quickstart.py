"""Quickstart: price a training iteration under both paradigms.

Builds the paper's 64xH100 cluster, loads the measured DCN profile,
and compares hybrid-parallel baseline vs DMT iteration latency — the
60-second version of Figures 1 and 13.

Run:  python examples/quickstart.py
"""

from repro.hardware import Cluster
from repro.perf.iteration_model import IterationLatencyModel
from repro.perf.profiles import dmt_dcn_profile, paper_dcn_profile


def main() -> None:
    cluster = Cluster(num_hosts=8, gpus_per_host=8, generation="H100")
    print(f"cluster: {cluster}")

    model = IterationLatencyModel()
    baseline = model.hybrid(paper_dcn_profile(), cluster, local_batch=16384)
    dmt = model.dmt(dmt_dcn_profile(num_towers=8), cluster, local_batch=16384)

    print("\nper-iteration latency (one GPU):")
    print(" ", baseline.format_row())
    print(" ", dmt.format_row())

    print("\nbaseline breakdown (cf. paper Figure 1):")
    for component, share in baseline.percentages().items():
        print(f"  {component:<20} {share:5.1f}%")

    print(f"\nDMT speedup: {dmt.speedup_over(baseline):.2f}x")
    print(
        "paper: ~1.6x for DCN at 64 GPUs; up to 1.9x for DLRM at larger scale"
    )


if __name__ == "__main__":
    main()
