"""SPTT walkthrough: the paper's Figure 7 example, executed for real.

Reconstructs the exact setup of Figures 3/4/7 — two hosts with two
GPUs each, four sparse features, towers {orange, red} -> host 0 and
{blue, green} -> host 1 — then runs both the flat exchange and SPTT
and prints the per-step layouts, ending with a bit-exact equality
check (the semantic-preservation claim of Table 3).

Run:  python examples/sptt_walkthrough.py
"""

import numpy as np

from repro.core.flat_pipeline import FlatEmbeddingExchange
from repro.core.partition import FeaturePartition
from repro.core.peer import peer_order
from repro.core.sptt import SPTTEmbeddingExchange
from repro.hardware import Cluster
from repro.models import tiny_table_configs
from repro.nn import EmbeddingBagCollection
from repro.sim import SimCluster

BATCH = 1  # one sample per GPU, like the paper's I_0..I_15 example
FEATURES = 4
ROWS = 8


def main() -> None:
    cluster = Cluster(num_hosts=2, gpus_per_host=2, generation="A100")
    print(f"cluster: {cluster}")
    print(f"peer order (paper: (0, 2, 1, 3)): {peer_order(4, 2)}")

    ebc = EmbeddingBagCollection(
        tiny_table_configs(FEATURES, ROWS, dim=2), rng=np.random.default_rng(0)
    )
    partition = FeaturePartition.from_groups([[0, 1], [2, 3]])
    print(f"towers: {partition.groups} (tower t lives on host t)")

    rng = np.random.default_rng(1)
    ids = {r: rng.integers(0, ROWS, size=(BATCH, FEATURES)) for r in range(4)}
    for r in range(4):
        print(f"  rank {r} local ids: {ids[r][0]}")

    # Flat paradigm (Figure 4).
    sim_flat = SimCluster(cluster)
    flat = FlatEmbeddingExchange(
        sim_flat, ebc, plan=[0, 1, 2, 3]
    )  # feature f owned by rank f, like the figures
    out_flat = flat.forward(ids)

    # SPTT (Figure 7).
    sim_sptt = SimCluster(cluster)
    sptt = SPTTEmbeddingExchange(sim_sptt, ebc, partition)
    towers = sptt.forward_to_towers(ids)
    print("\nafter steps (a)-(e), each rank holds its tower's features")
    print("for every peer's batch (H*B rows x F_t features x N):")
    for r in range(4):
        host = cluster.host_of(r)
        print(
            f"  rank {r}: shape {towers[r].shape} "
            f"(tower {host} features {sptt.tower_feature_order[host]})"
        )
    sim_sptt.timeline.clear()  # re-run the full pipeline for a clean trace
    out_sptt = sptt.forward(ids)

    print("\nper-rank embedding outputs equal bit-for-bit:")
    for r in range(4):
        same = np.array_equal(out_flat[r], out_sptt[r])
        print(f"  rank {r}: {'OK' if same else 'MISMATCH'}")
        assert same

    print("\ncommunication events (flat):")
    for e in sim_flat.timeline.events:
        print(f"  {e.label:<24} {e.seconds * 1e6:8.1f} us  world={e.world_size}")
    print("communication events (SPTT):")
    for e in sim_sptt.timeline.events:
        print(f"  {e.label:<24} {e.seconds * 1e6:8.1f} us  world={e.world_size}")
    print(
        "\nnote the peer AlltoAll world size equals the number of hosts "
        "(2), not the number of GPUs (4) — the §3.1.2 benefit."
    )


if __name__ == "__main__":
    main()
